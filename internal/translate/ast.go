// Package translate implements the paper's polygen query translation
// pipeline (§III, Figure 2): the Syntax Analyzer that turns a polygen
// algebraic expression into a Polygen Operation Matrix (Table 1), the
// two-pass Polygen Operation Interpreter of Figures 3 and 4 that expands it
// into an Intermediate Operation Matrix (Tables 2 and 3) using the polygen
// schema's attribute mappings, a practical Query Optimizer (the paper names
// the component but leaves it "beyond the scope"), and the SQL front end
// that compiles the polygen SQL subset into algebraic expressions.
package translate

import (
	"fmt"
	"strings"

	"repro/internal/rel"
)

// Expr is a polygen algebraic expression.
type Expr interface {
	// String renders the expression in the paper's notation, e.g.
	// ( PALUMNUS [DEGREE = "MBA"] ) [AID# = AID#] PCAREER.
	String() string
	isExpr()
}

// SchemeRef names a polygen scheme.
type SchemeRef struct {
	Name string
}

func (e *SchemeRef) isExpr()        {}
func (e *SchemeRef) String() string { return e.Name }

// SelectExpr is p[x θ constant].
type SelectExpr struct {
	In    Expr
	Attr  string
	Theta rel.Theta
	Const rel.Value
}

func (e *SelectExpr) isExpr() {}
func (e *SelectExpr) String() string {
	return fmt.Sprintf("(%s [%s %s %s])", e.In, e.Attr, e.Theta, formatConst(e.Const))
}

// RestrictExpr is p[x θ y] between two attributes of one expression.
type RestrictExpr struct {
	In    Expr
	X     string
	Theta rel.Theta
	Y     string
}

func (e *RestrictExpr) isExpr() {}
func (e *RestrictExpr) String() string {
	return fmt.Sprintf("(%s [%s %s %s])", e.In, e.X, e.Theta, e.Y)
}

// JoinExpr is p1[x θ y]p2.
type JoinExpr struct {
	L     Expr
	X     string
	Theta rel.Theta
	Y     string
	R     Expr
}

func (e *JoinExpr) isExpr() {}
func (e *JoinExpr) String() string {
	return fmt.Sprintf("(%s [%s %s %s] %s)", e.L, e.X, e.Theta, e.Y, e.R)
}

// ProjectExpr is p[x1, ..., xn].
type ProjectExpr struct {
	In    Expr
	Attrs []string
}

func (e *ProjectExpr) isExpr() {}
func (e *ProjectExpr) String() string {
	return fmt.Sprintf("(%s [%s])", e.In, strings.Join(e.Attrs, ", "))
}

// BinaryExpr covers the set-level operators the algebra inherits from the
// relational model: UNION, MINUS (Difference), INTERSECT and TIMES
// (Cartesian product). The paper's example uses none, but the polygen
// algebra defines them and the executor implements their tag semantics.
type BinaryExpr struct {
	Op OpName // OpUnion, OpDifference, OpIntersect, OpProduct
	L  Expr
	R  Expr
}

func (e *BinaryExpr) isExpr() {}
func (e *BinaryExpr) String() string {
	var kw string
	switch e.Op {
	case OpUnion:
		kw = "UNION"
	case OpDifference:
		kw = "MINUS"
	case OpIntersect:
		kw = "INTERSECT"
	case OpProduct:
		kw = "TIMES"
	default:
		kw = string(e.Op)
	}
	return fmt.Sprintf("(%s %s %s)", e.L, kw, e.R)
}

func formatConst(v rel.Value) string {
	if v.Kind() == rel.KindString {
		return fmt.Sprintf("%q", v.Str())
	}
	return v.String()
}
