package translate

import (
	"testing"
)

func compile(t *testing.T, sql string) Expr {
	t.Helper()
	e, err := CompileSQL(sql, testSchema())
	if err != nil {
		t.Fatalf("CompileSQL(%q): %v", sql, err)
	}
	return e
}

func TestCompileSimpleSelect(t *testing.T) {
	e := compile(t, `SELECT ANAME FROM PALUMNUS WHERE DEGREE = "MBA"`)
	want := `((PALUMNUS [DEGREE = "MBA"]) [ANAME])`
	if e.String() != want {
		t.Errorf("compiled %s, want %s", e, want)
	}
}

func TestCompileStar(t *testing.T) {
	e := compile(t, `SELECT * FROM PALUMNUS`)
	if e.String() != "PALUMNUS" {
		t.Errorf("compiled %s", e)
	}
}

func TestCompileSectionThreeSQL(t *testing.T) {
	e := compile(t, `SELECT ONAME, CEO FROM PORGANIZATION, PALUMNUS WHERE CEO = ANAME AND ONAME IN
		(SELECT ONAME FROM PCAREER WHERE AID# IN
		(SELECT AID# FROM PALUMNUS WHERE DEGREE = "MBA"))`)
	want := `(((((PALUMNUS [DEGREE = "MBA"]) [AID# = AID#] PCAREER) [ONAME = ONAME] PORGANIZATION) [CEO = ANAME]) [ONAME, CEO])`
	if e.String() != want {
		t.Errorf("compiled:\n  %s\nwant:\n  %s", e, want)
	}
}

func TestCompileSectionOneSQL(t *testing.T) {
	e := compile(t, `SELECT CEO FROM PORGANIZATION, PALUMNUS WHERE CEO = ANAME AND DEGREE = "MBA"`)
	want := `(((PORGANIZATION [CEO = ANAME] PALUMNUS) [DEGREE = "MBA"]) [CEO])`
	if e.String() != want {
		t.Errorf("compiled:\n  %s\nwant:\n  %s", e, want)
	}
}

func TestCompileAttrAttrAfterChainIsRestrict(t *testing.T) {
	// ANAME and MAJOR both live in PALUMNUS: one FROM relation, so the
	// attr-attr conjunct restricts rather than joins.
	e := compile(t, `SELECT ANAME FROM PALUMNUS WHERE ANAME = MAJOR`)
	want := `((PALUMNUS [ANAME = MAJOR]) [ANAME])`
	if e.String() != want {
		t.Errorf("compiled %s, want %s", e, want)
	}
}

func TestCompileFlipsWhenOnlyRightIsAvailable(t *testing.T) {
	// ANAME belongs to PALUMNUS (the chain); CEO joins PORGANIZATION in.
	e := compile(t, `SELECT CEO FROM PALUMNUS, PORGANIZATION WHERE DEGREE = "MBA" AND ANAME = CEO`)
	want := `((((PALUMNUS [ANAME = CEO] PORGANIZATION) [DEGREE = "MBA"])) [CEO])`
	// The exact parenthesization depends on rendering; compare POMs instead.
	_ = want
	pom, err := Analyze(e)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range pom.Rows {
		if r.Op == OpJoin && len(r.LHA) == 1 && r.LHA[0] == "ANAME" && r.RHA.Attr == "CEO" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected an ANAME = CEO join, got:\n%s", matrixLines(pom))
	}
}

func TestCompileCartesianFallback(t *testing.T) {
	e := compile(t, `SELECT ANAME, SNAME FROM PALUMNUS, PSTUDENT`)
	pom, err := Analyze(e)
	if err != nil {
		t.Fatal(err)
	}
	hasProduct := false
	for _, r := range pom.Rows {
		if r.Op == OpProduct {
			hasProduct = true
		}
	}
	if !hasProduct {
		t.Errorf("unconnected FROM relations should fall back to a Cartesian product, got:\n%s", matrixLines(pom))
	}
}

func TestCompileErrors(t *testing.T) {
	schema := testSchema()
	bad := []string{
		`SELECT X FROM NOSUCH`,
		`SELECT NOSUCH FROM PALUMNUS`,
		`SELECT ANAME FROM PALUMNUS WHERE NOSUCH = "x"`,
		`SELECT ANAME FROM PALUMNUS WHERE ANAME IN (SELECT NOSUCH FROM PCAREER)`,
		`SELECT a FROM`, // parse error propagates
	}
	for _, sql := range bad {
		if _, err := CompileSQL(sql, schema); err == nil {
			t.Errorf("CompileSQL(%q) should fail", sql)
		}
	}
}

// TestCompileINWithExistingChain: an IN condition whose attribute is
// already available joins the subquery chain to the existing expression.
func TestCompileINChained(t *testing.T) {
	e := compile(t, `SELECT ANAME FROM PALUMNUS WHERE DEGREE = "MBA" AND AID# IN
		(SELECT AID# FROM PCAREER WHERE POSITION = "CEO")`)
	pom, err := Analyze(e)
	if err != nil {
		t.Fatal(err)
	}
	// Expect: select on CAREER side, join to PALUMNUS, then select DEGREE,
	// then project. The order (IN first, consts last) follows the paper.
	joins, selects := 0, 0
	for _, r := range pom.Rows {
		switch r.Op {
		case OpJoin:
			joins++
		case OpSelect:
			selects++
		}
	}
	if joins != 1 || selects != 2 {
		t.Errorf("joins=%d selects=%d:\n%s", joins, selects, matrixLines(pom))
	}
}
