package translate

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rel"
	"repro/internal/sqlparse"
)

// CompileSQL compiles a polygen SQL query into a polygen algebraic
// expression against the given schema, following the construction the paper
// applies to its example (§III): IN-subqueries compile innermost-first into
// join chains, attribute–attribute conjuncts become joins (when they connect
// a new FROM relation) or restrictions (when both attributes are already in
// the chain), constant conjuncts become selections, and the SELECT list
// becomes the final projection. The §III query compiles to exactly the
// paper's expression:
//
//	((((PALUMNUS [DEGREE = "MBA"]) [AID# = AID#] PCAREER)
//	   [ONAME = ONAME] PORGANIZATION) [CEO = ANAME]) [ONAME, CEO]
func CompileSQL(input string, schema *core.Schema) (Expr, error) {
	q, err := sqlparse.Parse(input)
	if err != nil {
		return nil, err
	}
	return CompileQuery(q, schema)
}

// CompileQuery compiles a parsed SQL query block (including the final
// projection) into an algebraic expression.
func CompileQuery(q *sqlparse.Query, schema *core.Schema) (Expr, error) {
	b, err := compileBlock(q, schema)
	if err != nil {
		return nil, err
	}
	if q.Star {
		return b.expr, nil
	}
	for _, attr := range q.Select {
		if !b.avail[attr] {
			return nil, fmt.Errorf("translate: selected attribute %q is not available from %v", attr, q.From)
		}
	}
	return &ProjectExpr{In: b.expr, Attrs: append([]string(nil), q.Select...)}, nil
}

// block is a partially compiled query: the expression so far plus which
// polygen attributes it exposes and which FROM schemes it has incorporated.
type block struct {
	expr   Expr
	avail  map[string]bool
	joined map[string]bool
}

func (b *block) addScheme(s *core.Scheme) {
	b.joined[s.Name] = true
	for _, a := range s.Attrs {
		b.avail[a.Name] = true
	}
}

func (b *block) absorb(o *block) {
	for k := range o.avail {
		b.avail[k] = true
	}
	for k := range o.joined {
		b.joined[k] = true
	}
}

func compileBlock(q *sqlparse.Query, schema *core.Schema) (*block, error) {
	b := &block{avail: make(map[string]bool), joined: make(map[string]bool)}
	// owner resolves an attribute to the FROM scheme providing it. FROM
	// relations not yet incorporated into the chain are preferred: in
	// "SID# = SID#" (two FROM relations sharing an attribute name) the side
	// already available in the chain must resolve against a fresh relation,
	// not against itself.
	owner := func(attr string, exclude string) (*core.Scheme, error) {
		var fallback *core.Scheme
		for _, name := range q.From {
			s, ok := schema.Scheme(name)
			if !ok {
				return nil, fmt.Errorf("translate: no polygen scheme %q in FROM", name)
			}
			if _, ok := s.Attr(attr); !ok {
				continue
			}
			if name == exclude || b.joined[name] {
				if fallback == nil {
					fallback = s
				}
				continue
			}
			return s, nil
		}
		if fallback != nil {
			return fallback, nil
		}
		return nil, fmt.Errorf("translate: attribute %q not found in FROM relations %v", attr, q.From)
	}

	// Single-relation blocks start from their base so that constant
	// selections apply directly (the paper's innermost subquery becomes
	// PALUMNUS [DEGREE = "MBA"]).
	if len(q.From) == 1 {
		s, ok := schema.Scheme(q.From[0])
		if !ok {
			return nil, fmt.Errorf("translate: no polygen scheme %q in FROM", q.From[0])
		}
		hasIn := false
		for _, c := range q.Where {
			if c.Kind == sqlparse.CondIn {
				hasIn = true
				break
			}
		}
		if !hasIn {
			b.expr = &SchemeRef{Name: s.Name}
			b.addScheme(s)
		}
	}

	// Conditions apply in the order the paper's construction implies:
	// IN-subqueries first (they root the join chain), then
	// attribute–attribute conjuncts (joins or restrictions), then constant
	// selections. Within each class, WHERE order is preserved.
	var pending []sqlparse.Cond
	for _, c := range q.Where {
		if c.Kind == sqlparse.CondIn {
			pending = append(pending, c)
		}
	}
	for _, c := range q.Where {
		if c.Kind == sqlparse.CondCompare && !c.IsConst {
			pending = append(pending, c)
		}
	}
	for _, c := range q.Where {
		if c.Kind == sqlparse.CondCompare && c.IsConst {
			pending = append(pending, c)
		}
	}
	progress := true
	for progress {
		progress = false
		remaining := pending[:0]
		for _, c := range pending {
			applied, err := tryApply(b, c, owner, schema)
			if err != nil {
				return nil, err
			}
			if applied {
				progress = true
			} else {
				remaining = append(remaining, c)
			}
		}
		pending = remaining
	}
	if len(pending) > 0 {
		return nil, fmt.Errorf("translate: cannot place condition %q (no join path)", pending[0])
	}

	// Cartesian-product in any FROM relation never connected by a condition
	// (needed for bare multi-relation SELECTs).
	for _, name := range q.From {
		if b.joined[name] {
			continue
		}
		s, ok := schema.Scheme(name)
		if !ok {
			return nil, fmt.Errorf("translate: no polygen scheme %q in FROM", name)
		}
		if b.expr == nil {
			b.expr = &SchemeRef{Name: s.Name}
		} else {
			b.expr = &BinaryExpr{Op: OpProduct, L: b.expr, R: &SchemeRef{Name: s.Name}}
		}
		b.addScheme(s)
	}
	if b.expr == nil {
		return nil, fmt.Errorf("translate: empty FROM clause")
	}
	return b, nil
}

// tryApply attempts to fold one condition into the block, returning whether
// it succeeded. Conditions that cannot apply yet (their attributes are not
// available and no join path exists) are retried by the caller after other
// conditions have extended the chain.
func tryApply(b *block, c sqlparse.Cond, owner func(attr, exclude string) (*core.Scheme, error), schema *core.Schema) (bool, error) {
	switch c.Kind {
	case sqlparse.CondIn:
		sub, err := compileBlock(c.Sub, schema)
		if err != nil {
			return false, err
		}
		subAttr := c.Sub.Select[0]
		if !sub.avail[subAttr] {
			return false, fmt.Errorf("translate: subquery does not expose %q", subAttr)
		}
		switch {
		case b.expr == nil:
			s, err := owner(c.X, "")
			if err != nil {
				return false, err
			}
			b.expr = &JoinExpr{L: sub.expr, X: subAttr, Theta: rel.ThetaEQ, Y: c.X, R: &SchemeRef{Name: s.Name}}
			b.addScheme(s)
			b.absorb(sub)
			return true, nil
		case b.avail[c.X]:
			b.expr = &JoinExpr{L: sub.expr, X: subAttr, Theta: rel.ThetaEQ, Y: c.X, R: b.expr}
			b.absorb(sub)
			return true, nil
		default:
			s, err := owner(c.X, "")
			if err != nil {
				return false, err
			}
			if !b.joined[s.Name] {
				// Join the owning scheme in through the IN condition chain,
				// then connect to the existing expression later via another
				// condition; defer for now.
				return false, nil
			}
			return false, fmt.Errorf("translate: attribute %q not available for IN condition", c.X)
		}
	case sqlparse.CondCompare:
		if c.IsConst {
			if b.expr != nil && b.avail[c.X] {
				b.expr = &SelectExpr{In: b.expr, Attr: c.X, Theta: c.Theta, Const: c.YConst}
				return true, nil
			}
			if b.expr == nil {
				s, err := owner(c.X, "")
				if err != nil {
					return false, err
				}
				b.expr = &SelectExpr{In: &SchemeRef{Name: s.Name}, Attr: c.X, Theta: c.Theta, Const: c.YConst}
				b.addScheme(s)
				return true, nil
			}
			return false, nil
		}
		// attribute θ attribute
		xAvail := b.expr != nil && b.avail[c.X]
		yAvail := b.expr != nil && b.avail[c.YAttr]
		// "A = A" with A already in the chain reads as a natural join when
		// an un-joined FROM relation also provides A; as a (degenerate)
		// self-restriction only when no such relation exists.
		if c.X == c.YAttr && xAvail {
			if s, err := owner(c.X, ""); err == nil && !b.joined[s.Name] {
				b.expr = &JoinExpr{L: b.expr, X: c.X, Theta: c.Theta, Y: c.YAttr, R: &SchemeRef{Name: s.Name}}
				b.addScheme(s)
				return true, nil
			}
		}
		switch {
		case xAvail && yAvail:
			b.expr = &RestrictExpr{In: b.expr, X: c.X, Theta: c.Theta, Y: c.YAttr}
			return true, nil
		case xAvail:
			s, err := owner(c.YAttr, "")
			if err != nil {
				return false, err
			}
			b.expr = &JoinExpr{L: b.expr, X: c.X, Theta: c.Theta, Y: c.YAttr, R: &SchemeRef{Name: s.Name}}
			b.addScheme(s)
			return true, nil
		case yAvail:
			s, err := owner(c.X, "")
			if err != nil {
				return false, err
			}
			b.expr = &JoinExpr{L: b.expr, X: c.YAttr, Theta: c.Theta.Flip(), Y: c.X, R: &SchemeRef{Name: s.Name}}
			b.addScheme(s)
			return true, nil
		case b.expr == nil:
			sx, err := owner(c.X, "")
			if err != nil {
				return false, err
			}
			sy, err := owner(c.YAttr, sx.Name)
			if err != nil {
				return false, err
			}
			b.expr = &JoinExpr{L: &SchemeRef{Name: sx.Name}, X: c.X, Theta: c.Theta, Y: c.YAttr, R: &SchemeRef{Name: sy.Name}}
			b.addScheme(sx)
			b.addScheme(sy)
			return true, nil
		default:
			return false, nil
		}
	default:
		return false, fmt.Errorf("translate: unknown condition kind %d", c.Kind)
	}
}
