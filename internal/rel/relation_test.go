package rel

import (
	"strings"
	"testing"
)

func TestNewSchema(t *testing.T) {
	s := SchemaOf("A", "B", "C")
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if s.Index("B") != 1 || s.Index("Z") != -1 {
		t.Error("Index lookup wrong")
	}
	if !s.Has("C") || s.Has("D") {
		t.Error("Has wrong")
	}
	if got := s.String(); got != "(A, B, C)" {
		t.Errorf("String = %q", got)
	}
	names := s.Names()
	if len(names) != 3 || names[0] != "A" || names[2] != "C" {
		t.Errorf("Names = %v", names)
	}
}

func TestNewSchemaDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate attribute did not panic")
		}
	}()
	NewSchema(Attr{Name: "A"}, Attr{Name: "A"})
}

func TestSchemaEqual(t *testing.T) {
	a := SchemaOf("X", "Y")
	b := SchemaOf("X", "Y")
	c := SchemaOf("Y", "X")
	d := SchemaOf("X")
	if !a.Equal(b) {
		t.Error("identical schemas not Equal")
	}
	if a.Equal(c) {
		t.Error("reordered schemas Equal")
	}
	if a.Equal(d) {
		t.Error("different-degree schemas Equal")
	}
}

func TestTupleKeyAndEqual(t *testing.T) {
	t1 := Tuple{String("a"), Int(1)}
	t2 := Tuple{String("a"), Int(1)}
	t3 := Tuple{String("a"), Int(2)}
	t4 := Tuple{String("a")}
	if t1.Key() != t2.Key() {
		t.Error("equal tuples have different keys")
	}
	if t1.Key() == t3.Key() {
		t.Error("different tuples share a key")
	}
	if !t1.Equal(t2) || t1.Equal(t3) || t1.Equal(t4) {
		t.Error("Tuple.Equal wrong")
	}
	// Keys must not collide across arity boundaries ("ab","c" vs "a","bc").
	if (Tuple{String("ab"), String("c")}).Key() == (Tuple{String("a"), String("bc")}).Key() {
		t.Error("tuple key collides across cell boundaries")
	}
}

func TestTupleClone(t *testing.T) {
	t1 := Tuple{String("a"), Int(1)}
	c := t1.Clone()
	c[0] = String("b")
	if t1[0].Str() != "a" {
		t.Error("Clone aliases the original")
	}
}

func TestRelationAppend(t *testing.T) {
	r := NewRelation("T", SchemaOf("A", "B"))
	if err := r.Append(Tuple{Int(1), Int(2)}); err != nil {
		t.Fatal(err)
	}
	if err := r.Append(Tuple{Int(1)}); err == nil {
		t.Error("degree mismatch accepted")
	}
	if r.Cardinality() != 1 || r.Degree() != 2 {
		t.Errorf("Cardinality/Degree = %d/%d", r.Cardinality(), r.Degree())
	}
}

func TestRelationMustAppendPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAppend with wrong degree did not panic")
		}
	}()
	r := NewRelation("T", SchemaOf("A"))
	r.MustAppend(Int(1), Int(2))
}

func TestRelationClone(t *testing.T) {
	r := NewRelation("T", SchemaOf("A"))
	r.MustAppend(String("x"))
	c := r.Clone()
	c.Tuples[0][0] = String("y")
	if r.Tuples[0][0].Str() != "x" {
		t.Error("Clone aliases tuples")
	}
}

func TestRelationCol(t *testing.T) {
	r := NewRelation("T", SchemaOf("A", "B"))
	if i, err := r.Col("B"); err != nil || i != 1 {
		t.Errorf("Col(B) = %d, %v", i, err)
	}
	if _, err := r.Col("Z"); err == nil {
		t.Error("Col(Z) should fail")
	} else if !strings.Contains(err.Error(), "\"T\"") {
		t.Errorf("error should name the relation: %v", err)
	}
}

func TestRelationString(t *testing.T) {
	r := NewRelation("T", SchemaOf("A", "B"))
	r.MustAppend(String("x"), Null())
	s := r.String()
	if !strings.Contains(s, "T(A, B)") || !strings.Contains(s, "x | nil") {
		t.Errorf("String = %q", s)
	}
}
