package rel

import "io"

// This file defines the streaming substrate of the execution engine: a
// Cursor yields a relation batch-at-a-time instead of materializing it, so
// a query's peak memory is bounded by the batches in flight rather than by
// the sum of its intermediate results, and remote retrieval can overlap
// with downstream operator work (EMBANKS-style memory-bounded streaming,
// layered under the polygen algebra's tagged cursors in package core).

// DefaultBatchSize is the number of tuples per batch used by the engine's
// cursors and by the wire protocol's row frames when the caller does not
// choose one. Batches are small enough to bound memory and large enough to
// amortize per-batch overhead (interface calls, frame headers, prefetch
// hand-offs).
const DefaultBatchSize = 256

// Cursor is a pull-based producer of tuple batches over a fixed schema.
//
// Next returns the next non-empty batch, or (nil, io.EOF) after the last
// one; any other error is a failure of the underlying producer. A returned
// batch is immutable: neither the cursor nor the consumer may modify its
// tuples (they may share storage with a live base relation), and it remains
// valid across subsequent Next calls — consumers that retain tuples need
// not copy them. Cursors are single-consumer and not safe for concurrent
// use; wrap one in Prefetch to move production onto its own goroutine.
//
// Close releases the cursor's resources (goroutines, connections). It is
// idempotent, and must be called even when Next has already returned an
// error or io.EOF.
type Cursor interface {
	// Schema describes the columns of every batch.
	Schema() *Schema
	// Next returns the next batch, or (nil, io.EOF) when exhausted.
	Next() ([]Tuple, error)
	// Close releases the cursor's resources.
	Close() error
}

// sliceCursor cuts an in-memory tuple slice into batches.
type sliceCursor struct {
	schema *Schema
	tuples []Tuple
	at     int
	batch  int
}

// NewSliceCursor returns a cursor over tuples with the given batch size
// (values < 1 mean DefaultBatchSize). The slice is read, never copied: the
// batches alias it.
func NewSliceCursor(schema *Schema, tuples []Tuple, batch int) Cursor {
	if batch < 1 {
		batch = DefaultBatchSize
	}
	return &sliceCursor{schema: schema, tuples: tuples, batch: batch}
}

// CursorOf returns a cursor over r's tuples in DefaultBatchSize batches.
func CursorOf(r *Relation) Cursor {
	return NewSliceCursor(r.Schema, r.Tuples, DefaultBatchSize)
}

func (c *sliceCursor) Schema() *Schema { return c.schema }

func (c *sliceCursor) Next() ([]Tuple, error) {
	if c.at >= len(c.tuples) {
		return nil, io.EOF
	}
	end := c.at + c.batch
	if end > len(c.tuples) {
		end = len(c.tuples)
	}
	b := c.tuples[c.at:end:end]
	c.at = end
	return b, nil
}

// NextCol implements ColCursor: the next batch-sized run, columnarized. Next
// keeps its zero-copy row batches; only columnar consumers (the wire
// server's binary frames) pay for the conversion.
func (c *sliceCursor) NextCol() (*ColBatch, error) {
	if c.at >= len(c.tuples) {
		return nil, io.EOF
	}
	end := c.at + c.batch
	if end > len(c.tuples) {
		end = len(c.tuples)
	}
	b := FromTuples(c.schema, c.tuples[c.at:end])
	c.at = end
	return b, nil
}

func (c *sliceCursor) Close() error {
	c.at = len(c.tuples)
	return nil
}

var _ ColCursor = (*sliceCursor)(nil)

// filterCursor streams the tuples of an input cursor that satisfy a
// predicate.
type filterCursor struct {
	in   Cursor
	keep func(Tuple) bool
}

// FilterCursor returns a cursor over the tuples of in for which keep holds.
// Tuples pass through unchanged (and therefore share storage with in's
// batches). Filtering is fully pipelined: one input batch is in flight at a
// time.
func FilterCursor(in Cursor, keep func(Tuple) bool) Cursor {
	return &filterCursor{in: in, keep: keep}
}

func (c *filterCursor) Schema() *Schema { return c.in.Schema() }

func (c *filterCursor) Next() ([]Tuple, error) {
	for {
		batch, err := c.in.Next()
		if err != nil {
			return nil, err
		}
		out := batch[:0:0]
		for _, t := range batch {
			if c.keep(t) {
				out = append(out, t)
			}
		}
		if len(out) > 0 {
			return out, nil
		}
	}
}

func (c *filterCursor) Close() error { return c.in.Close() }

// Drain materializes a cursor into a relation (with the cursor's schema and
// no name) and closes it. Batch tuples are retained, not copied — the
// Cursor contract keeps them valid and immutable.
func Drain(c Cursor) (*Relation, error) {
	out := NewRelation("", c.Schema())
	for {
		batch, err := c.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			c.Close()
			return nil, err
		}
		out.Tuples = append(out.Tuples, batch...)
	}
	return out, c.Close()
}

// prefetched is one hand-off from a prefetch producer to its consumer: a
// row batch, or a whole column batch when the inner cursor is columnar.
type prefetched struct {
	batch []Tuple
	cb    *ColBatch
	err   error
}

// prefetchCursor runs its input cursor on a producer goroutine, keeping up
// to depth batches buffered ahead of the consumer.
type prefetchCursor struct {
	schema *Schema
	in     Cursor
	icc    ColCursor // in's columnar capability, nil without one
	ch     chan prefetched
	stop   chan struct{}
	done   chan struct{}
	err    error
	closed bool
}

// Prefetch wraps in so that batches are produced on a dedicated goroutine,
// up to depth batches ahead of the consumer (depth < 1 means 1). This is
// what lets a slow producer — a wide-area LQP, an injected-latency wrapper —
// overlap with downstream operator work: the producer sleeps or waits on
// the network while the consumer computes. Close stops the producer and
// closes the inner cursor; it must be called even on early abandonment.
//
// The columnar capability passes through: over a ColCursor the producer
// hands whole column batches across the channel, and row consumers get the
// batch's cached row view — so a binary wire stream stays columnar from the
// socket to the operator without re-boxing at the prefetch seam.
func Prefetch(in Cursor, depth int) Cursor {
	if depth < 1 {
		depth = 1
	}
	icc, _ := in.(ColCursor)
	p := &prefetchCursor{
		schema: in.Schema(),
		in:     in,
		icc:    icc,
		ch:     make(chan prefetched, depth),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go p.run()
	return p
}

func (p *prefetchCursor) run() {
	defer close(p.done)
	defer close(p.ch)
	for {
		// Check stop before producing, not only at the hand-off: when the
		// buffer has room, the send would win the race against a
		// just-closed stop and the producer would keep draining the inner
		// cursor — up to depth extra batches of work (and inner Next calls)
		// after Close. An abandoned cursor must stop at the next iteration.
		select {
		case <-p.stop:
			return
		default:
		}
		var pf prefetched
		if p.icc != nil {
			pf.cb, pf.err = p.icc.NextCol()
		} else {
			pf.batch, pf.err = p.in.Next()
		}
		select {
		case p.ch <- pf:
			if pf.err != nil {
				return
			}
		case <-p.stop:
			return
		}
	}
}

func (p *prefetchCursor) Schema() *Schema { return p.schema }

// next receives one hand-off; exactly one of the batch forms is non-empty.
func (p *prefetchCursor) next() ([]Tuple, *ColBatch, error) {
	if p.err != nil {
		return nil, nil, p.err
	}
	pf, ok := <-p.ch
	if !ok {
		// Producer stopped without delivering an error (Close raced a
		// concurrent producer exit); treat as exhaustion.
		p.err = io.EOF
		return nil, nil, io.EOF
	}
	if pf.err != nil {
		p.err = pf.err
		return nil, nil, pf.err
	}
	return pf.batch, pf.cb, nil
}

func (p *prefetchCursor) Next() ([]Tuple, error) {
	batch, cb, err := p.next()
	if err != nil {
		return nil, err
	}
	if cb != nil {
		return cb.Rows(), nil
	}
	return batch, nil
}

// NextCol implements ColCursor regardless of the inner cursor: columnar
// inners hand batches through unchanged, row inners are columnarized here.
func (p *prefetchCursor) NextCol() (*ColBatch, error) {
	batch, cb, err := p.next()
	if err != nil {
		return nil, err
	}
	if cb == nil {
		cb = FromTuples(p.schema, batch)
	}
	return cb, nil
}

var _ ColCursor = (*prefetchCursor)(nil)

func (p *prefetchCursor) Close() error {
	if p.closed {
		return nil
	}
	p.closed = true
	close(p.stop)
	select {
	case <-p.done:
		// Producer already exited (it delivered EOF or an error, or raced
		// ahead of a parked hand-off): close the inner cursor in place.
		return p.in.Close()
	default:
		// The producer may be parked inside in.Next — a network read on a
		// stalled remote stream, an injected-latency sleep. Don't block the
		// caller on it: the inner cursor is closed the moment the producer
		// returns (a parked hand-off notices stop immediately; a parked
		// in.Next at worst runs to its own deadline on the producer
		// goroutine, not the caller's).
		go func() {
			<-p.done
			p.in.Close()
		}()
		return nil
	}
}
