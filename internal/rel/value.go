// Package rel provides the plain (untagged) relational substrate on which the
// polygen model is built: typed values, attributes, schemas, tuples and
// relations. Every local database in the federation — and the untagged
// baseline used by the benchmarks — is expressed in terms of this package.
package rel

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the primitive value types supported by the local databases.
type Kind uint8

const (
	// KindNull is the type of the absent value. In the polygen model nil
	// data appear as padding produced by outer joins (paper, Appendix A).
	KindNull Kind = iota
	// KindString is a character-string value.
	KindString
	// KindInt is a 64-bit signed integer value.
	KindInt
	// KindFloat is a 64-bit floating-point value.
	KindFloat
	// KindBool is a boolean value.
	KindBool
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a single datum drawn from a simple domain of a local database.
// The zero Value is the null value.
//
// Value is a small immutable struct and is passed by value throughout.
type Value struct {
	kind Kind
	str  string
	num  int64
	fnum float64
	b    bool
}

// Null returns the null value.
func Null() Value { return Value{} }

// String returns a string value.
func String(s string) Value { return Value{kind: KindString, str: s} }

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, num: i} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{kind: KindFloat, fnum: f} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Kind reports the kind of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Str returns the string payload. It is only meaningful for KindString.
func (v Value) Str() string { return v.str }

// IntVal returns the integer payload. It is only meaningful for KindInt.
func (v Value) IntVal() int64 { return v.num }

// FloatVal returns the float payload. It is only meaningful for KindFloat.
func (v Value) FloatVal() float64 { return v.fnum }

// BoolVal returns the boolean payload. It is only meaningful for KindBool.
func (v Value) BoolVal() bool { return v.b }

// String renders the value for display. Null renders as "nil", matching the
// paper's tables.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "nil"
	case KindString:
		return v.str
	case KindInt:
		return strconv.FormatInt(v.num, 10)
	case KindFloat:
		return strconv.FormatFloat(v.fnum, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.b)
	default:
		return fmt.Sprintf("value(kind=%d)", uint8(v.kind))
	}
}

// Key returns a string that is equal for exactly those values that are Equal.
// It is usable as a map key for hashing-based algorithms (duplicate
// elimination, hash joins).
func (v Value) Key() string {
	switch v.kind {
	case KindNull:
		return "\x00n"
	case KindString:
		return "\x00s" + v.str
	case KindInt:
		return "\x00i" + strconv.FormatInt(v.num, 10)
	case KindFloat:
		f := v.fnum
		if f == 0 {
			f = 0 // Equal treats +0 and -0 as one datum; key them identically.
		}
		return "\x00f" + strconv.FormatFloat(f, 'b', -1, 64)
	case KindBool:
		if v.b {
			return "\x00bt"
		}
		return "\x00bf"
	default:
		return "\x00?"
	}
}

// Equal reports whether two values are identical (same kind, same payload).
// Null equals only null. No cross-kind numeric coercion is performed; use
// Compare for ordered, coercing comparison.
func (v Value) Equal(w Value) bool {
	if v.kind != w.kind {
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindString:
		return v.str == w.str
	case KindInt:
		return v.num == w.num
	case KindFloat:
		return v.fnum == w.fnum
	case KindBool:
		return v.b == w.b
	default:
		return false
	}
}

// Identical reports whether two values are the same datum for hashing-based
// duplicate elimination and joins. It agrees with Key-string equality: like
// Equal except on NaN, where Equal follows IEEE (NaN != NaN) while Key
// formats every NaN the same way — so dedup, which must reproduce the
// string-keyed reference semantics, treats all NaNs as one datum.
func (v Value) Identical(w Value) bool {
	if v.kind == KindFloat && w.kind == KindFloat {
		return v.fnum == w.fnum || (v.fnum != v.fnum && w.fnum != w.fnum)
	}
	return v.Equal(w)
}

// Compare orders two values. Nulls sort first; mismatched kinds order by kind
// except that int and float compare numerically. The result is -1, 0 or +1.
func (v Value) Compare(w Value) int {
	if v.kind == KindInt && w.kind == KindFloat {
		return cmpFloat(float64(v.num), w.fnum)
	}
	if v.kind == KindFloat && w.kind == KindInt {
		return cmpFloat(v.fnum, float64(w.num))
	}
	if v.kind != w.kind {
		if v.kind < w.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindNull:
		return 0
	case KindString:
		return strings.Compare(v.str, w.str)
	case KindInt:
		switch {
		case v.num < w.num:
			return -1
		case v.num > w.num:
			return 1
		}
		return 0
	case KindFloat:
		return cmpFloat(v.fnum, w.fnum)
	case KindBool:
		switch {
		case !v.b && w.b:
			return -1
		case v.b && !w.b:
			return 1
		}
		return 0
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Parse converts a textual literal into a Value. It recognizes integers,
// floats, the booleans "true"/"false", the null literal "nil", and falls back
// to a string. CSV loading and the CLI tools use it.
func Parse(s string) Value {
	switch s {
	case "nil", "NULL", "null":
		return Null()
	case "true":
		return Bool(true)
	case "false":
		return Bool(false)
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return Int(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return Float(f)
	}
	return String(s)
}
