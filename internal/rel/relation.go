package rel

import (
	"fmt"
	"strings"
)

// Attr is a named attribute (column) of a relation schema.
type Attr struct {
	// Name is the attribute name, unique within its schema.
	Name string
	// Kind is the declared kind of the attribute's domain. KindNull means
	// "unspecified" (any kind accepted); local databases in the paper carry
	// untyped textual data, so unspecified domains are common.
	Kind Kind
}

// Schema is an ordered list of attributes.
type Schema struct {
	attrs []Attr
	index map[string]int
}

// NewSchema builds a schema from the given attributes. It panics if two
// attributes share a name: schemas are construction-time artifacts and a
// duplicate name is a programming error.
func NewSchema(attrs ...Attr) *Schema {
	s := &Schema{attrs: append([]Attr(nil), attrs...), index: make(map[string]int, len(attrs))}
	for i, a := range attrs {
		if _, dup := s.index[a.Name]; dup {
			panic(fmt.Sprintf("rel: duplicate attribute %q in schema", a.Name))
		}
		s.index[a.Name] = i
	}
	return s
}

// SchemaOf builds a schema of unspecified kinds from attribute names.
func SchemaOf(names ...string) *Schema {
	attrs := make([]Attr, len(names))
	for i, n := range names {
		attrs[i] = Attr{Name: n}
	}
	return NewSchema(attrs...)
}

// Len returns the number of attributes (the degree of relations over this
// schema).
func (s *Schema) Len() int { return len(s.attrs) }

// Attr returns the i-th attribute.
func (s *Schema) Attr(i int) Attr { return s.attrs[i] }

// Attrs returns a copy of the attribute list.
func (s *Schema) Attrs() []Attr { return append([]Attr(nil), s.attrs...) }

// Names returns the attribute names in order.
func (s *Schema) Names() []string {
	names := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		names[i] = a.Name
	}
	return names
}

// Index returns the position of the named attribute, or -1 if absent.
func (s *Schema) Index(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// Has reports whether the schema contains the named attribute.
func (s *Schema) Has(name string) bool { return s.Index(name) >= 0 }

// Equal reports whether two schemas have the same attributes, in order.
func (s *Schema) Equal(t *Schema) bool {
	if s.Len() != t.Len() {
		return false
	}
	for i := range s.attrs {
		if s.attrs[i] != t.attrs[i] {
			return false
		}
	}
	return true
}

// String renders the schema as "(A, B, C)".
func (s *Schema) String() string {
	return "(" + strings.Join(s.Names(), ", ") + ")"
}

// Tuple is an ordered list of values conforming positionally to a schema.
type Tuple []Value

// Key returns a hashable key identical for tuples with Equal values.
func (t Tuple) Key() string {
	var b strings.Builder
	for _, v := range t {
		b.WriteString(v.Key())
		b.WriteByte('\x01')
	}
	return b.String()
}

// Equal reports value-wise equality of two tuples.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].Equal(u[i]) {
			return false
		}
	}
	return true
}

// Identical reports value-wise identity of two tuples (Value.Identical: like
// Equal, but all NaNs are one datum, matching Key). It is the
// collision-verification fallback for Hash64 buckets.
func (t Tuple) Identical(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].Identical(u[i]) {
			return false
		}
	}
	return true
}

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// Relation is a named, schema-ful multiset of tuples. The plain relational
// operators in package relalg treat it as a set (duplicates eliminated) per
// the classical model; the storage layer does not forbid duplicates so that
// intermediate results can be built incrementally.
type Relation struct {
	// Name is the relation name, e.g. "ALUMNUS". Derived relations may have
	// an empty name.
	Name string
	// Schema describes the columns.
	Schema *Schema
	// Tuples holds the rows.
	Tuples []Tuple
	// arena backs rows produced by the relational operators (package
	// relalg): output rows are sliced out of relation-owned chunks (NewRow)
	// instead of one make per row. Rows carved from retired chunks stay
	// valid, so the arena only grows forward.
	arena []Value
}

// arenaChunkValues is the value count of one freshly-grown arena chunk.
const arenaChunkValues = 4096

// NewRow returns a zeroed row of n values sliced out of the relation's
// arena. The row's capacity is clamped to n, so appending to it cannot
// scribble over neighboring rows. Relations are built by a single goroutine;
// NewRow is not safe for concurrent use on one relation.
func (r *Relation) NewRow(n int) Tuple {
	if n == 0 {
		return Tuple{}
	}
	if cap(r.arena)-len(r.arena) < n {
		chunk := arenaChunkValues
		if chunk < n {
			chunk = n
		}
		r.arena = make([]Value, 0, chunk)
	}
	s := len(r.arena)
	r.arena = r.arena[:s+n]
	return r.arena[s : s+n : s+n]
}

// NewRelation builds an empty relation over the given schema.
func NewRelation(name string, schema *Schema) *Relation {
	return &Relation{Name: name, Schema: schema}
}

// Append adds a tuple, checking its degree against the schema.
func (r *Relation) Append(t Tuple) error {
	if len(t) != r.Schema.Len() {
		return fmt.Errorf("rel: tuple degree %d does not match schema %s of %q", len(t), r.Schema, r.Name)
	}
	r.Tuples = append(r.Tuples, t)
	return nil
}

// MustAppend adds a tuple and panics on degree mismatch. It is intended for
// statically-known literal data such as the embedded paper dataset.
func (r *Relation) MustAppend(vals ...Value) {
	if err := r.Append(Tuple(vals)); err != nil {
		panic(err)
	}
}

// Cardinality returns the number of stored tuples (including duplicates).
func (r *Relation) Cardinality() int { return len(r.Tuples) }

// Degree returns the number of attributes.
func (r *Relation) Degree() int { return r.Schema.Len() }

// Clone returns a deep copy of the relation (tuples are copied; values are
// immutable and shared).
func (r *Relation) Clone() *Relation {
	c := &Relation{Name: r.Name, Schema: r.Schema, Tuples: make([]Tuple, len(r.Tuples))}
	for i, t := range r.Tuples {
		c.Tuples[i] = t.Clone()
	}
	return c
}

// Col returns the index of the named attribute or an error naming the
// relation, for use by operators that must report resolution failures.
func (r *Relation) Col(name string) (int, error) {
	if i := r.Schema.Index(name); i >= 0 {
		return i, nil
	}
	return 0, fmt.Errorf("rel: relation %q has no attribute %q (schema %s)", r.Name, name, r.Schema)
}

// String renders a compact textual form of the relation, one tuple per line.
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s%s [%d tuples]\n", r.Name, r.Schema, len(r.Tuples))
	for _, t := range r.Tuples {
		parts := make([]string, len(t))
		for i, v := range t {
			parts[i] = v.String()
		}
		b.WriteString("  " + strings.Join(parts, " | ") + "\n")
	}
	return b.String()
}
