package rel

import "fmt"

// Theta is a binary comparison relation (the θ of a θ-restriction). Both the
// plain relational algebra and the polygen algebra restrict tuples with a
// Theta between two attributes or an attribute and a constant.
type Theta uint8

const (
	// ThetaEQ is equality (=).
	ThetaEQ Theta = iota
	// ThetaNE is inequality (<>).
	ThetaNE
	// ThetaLT is less-than (<).
	ThetaLT
	// ThetaLE is less-than-or-equal (<=).
	ThetaLE
	// ThetaGT is greater-than (>).
	ThetaGT
	// ThetaGE is greater-than-or-equal (>=).
	ThetaGE
)

// ParseTheta converts the SQL/algebra spelling of a comparison into a Theta.
func ParseTheta(s string) (Theta, error) {
	switch s {
	case "=", "==":
		return ThetaEQ, nil
	case "<>", "!=":
		return ThetaNE, nil
	case "<":
		return ThetaLT, nil
	case "<=":
		return ThetaLE, nil
	case ">":
		return ThetaGT, nil
	case ">=":
		return ThetaGE, nil
	default:
		return 0, fmt.Errorf("rel: unknown comparison operator %q", s)
	}
}

// String returns the SQL spelling of the comparison.
func (t Theta) String() string {
	switch t {
	case ThetaEQ:
		return "="
	case ThetaNE:
		return "<>"
	case ThetaLT:
		return "<"
	case ThetaLE:
		return "<="
	case ThetaGT:
		return ">"
	case ThetaGE:
		return ">="
	default:
		return fmt.Sprintf("theta(%d)", uint8(t))
	}
}

// Flip returns the comparison with its operands exchanged: a θ b holds iff
// b θ.Flip() a holds.
func (t Theta) Flip() Theta {
	switch t {
	case ThetaLT:
		return ThetaGT
	case ThetaLE:
		return ThetaGE
	case ThetaGT:
		return ThetaLT
	case ThetaGE:
		return ThetaLE
	default: // = and <> are symmetric
		return t
	}
}

// Eval applies the comparison to two values. Comparisons involving null are
// false (three-valued logic collapsed to false, as in SQL WHERE).
func (t Theta) Eval(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return false
	}
	switch t {
	case ThetaEQ:
		return a.Compare(b) == 0
	case ThetaNE:
		return a.Compare(b) != 0
	case ThetaLT:
		return a.Compare(b) < 0
	case ThetaLE:
		return a.Compare(b) <= 0
	case ThetaGT:
		return a.Compare(b) > 0
	case ThetaGE:
		return a.Compare(b) >= 0
	default:
		return false
	}
}
