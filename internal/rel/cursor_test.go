package rel

import (
	"errors"
	"io"
	"sync/atomic"
	"testing"
	"time"
)

func cursorTestRelation(n int) *Relation {
	r := NewRelation("T", SchemaOf("A", "B"))
	for i := 0; i < n; i++ {
		r.MustAppend(Int(int64(i)), String("x"))
	}
	return r
}

func TestSliceCursorBatches(t *testing.T) {
	r := cursorTestRelation(10)
	c := NewSliceCursor(r.Schema, r.Tuples, 3)
	var sizes []int
	total := 0
	for {
		b, err := c.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, len(b))
		for _, tup := range b {
			if tup[0].IntVal() != int64(total) {
				t.Fatalf("tuple %d out of order: %v", total, tup)
			}
			total++
		}
	}
	if total != 10 {
		t.Fatalf("saw %d tuples, want 10", total)
	}
	want := []int{3, 3, 3, 1}
	for i, s := range sizes {
		if s != want[i] {
			t.Fatalf("batch sizes = %v, want %v", sizes, want)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Next(); err != io.EOF {
		t.Fatalf("Next after exhaustion = %v, want io.EOF", err)
	}
}

func TestDrainRoundTrips(t *testing.T) {
	r := cursorTestRelation(700) // > 2 default batches
	got, err := Drain(CursorOf(r))
	if err != nil {
		t.Fatal(err)
	}
	if got.Cardinality() != 700 {
		t.Fatalf("drained %d tuples, want 700", got.Cardinality())
	}
	for i, tup := range got.Tuples {
		if !tup.Equal(r.Tuples[i]) {
			t.Fatalf("tuple %d diverged", i)
		}
	}
}

func TestFilterCursor(t *testing.T) {
	r := cursorTestRelation(100)
	c := FilterCursor(NewSliceCursor(r.Schema, r.Tuples, 7), func(t Tuple) bool {
		return t[0].IntVal()%10 == 0
	})
	got, err := Drain(c)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cardinality() != 10 {
		t.Fatalf("filtered %d tuples, want 10", got.Cardinality())
	}
	for i, tup := range got.Tuples {
		if tup[0].IntVal() != int64(i*10) {
			t.Fatalf("tuple %d = %v, want %d", i, tup, i*10)
		}
	}
}

func TestPrefetchPreservesOrderAndEOF(t *testing.T) {
	r := cursorTestRelation(1000)
	c := Prefetch(NewSliceCursor(r.Schema, r.Tuples, 9), 4)
	got, err := Drain(c)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cardinality() != 1000 {
		t.Fatalf("drained %d tuples, want 1000", got.Cardinality())
	}
	for i, tup := range got.Tuples {
		if tup[0].IntVal() != int64(i) {
			t.Fatalf("tuple %d out of order", i)
		}
	}
}

// closeCounter records Close calls on a wrapped cursor. The count is
// atomic: an abandoning Prefetch.Close may hand the inner close to the
// producer goroutine.
type closeCounter struct {
	Cursor
	closes atomic.Int32
}

func (c *closeCounter) Close() error {
	c.closes.Add(1)
	return c.Cursor.Close()
}

func TestPrefetchCloseBeforeDrain(t *testing.T) {
	r := cursorTestRelation(100000)
	inner := &closeCounter{Cursor: NewSliceCursor(r.Schema, r.Tuples, 8)}
	c := Prefetch(inner, 2)
	if _, err := c.Next(); err != nil {
		t.Fatal(err)
	}
	// Abandon mid-stream: Close must not block on the producer, the
	// producer must stop, and the inner cursor must close exactly once.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	deadline := time.Now().Add(5 * time.Second)
	for inner.closes.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := inner.closes.Load(); n != 1 {
		t.Fatalf("inner cursor closed %d times, want 1", n)
	}
}

// blockingCursor parks in Next until released, modeling a stalled remote
// producer; Close releases it (as closing a network stream would).
type blockingCursor struct {
	schema   *Schema
	release  chan struct{}
	closes   atomic.Int32
	nexts    atomic.Int32
	released atomic.Bool
}

func newBlockingCursor() *blockingCursor {
	return &blockingCursor{schema: SchemaOf("A"), release: make(chan struct{})}
}

func (c *blockingCursor) Schema() *Schema { return c.schema }
func (c *blockingCursor) Next() ([]Tuple, error) {
	c.nexts.Add(1)
	<-c.release
	return nil, io.EOF
}
func (c *blockingCursor) Close() error {
	c.closes.Add(1)
	if c.released.CompareAndSwap(false, true) {
		close(c.release)
	}
	return nil
}

// TestPrefetchCloseBeforeFirstNext: closing a prefetch cursor before any
// Next — even while the producer is parked inside the inner cursor's Next —
// must return immediately; once the inner cursor unblocks, the read-ahead
// goroutine must exit and the deferred close must fire. Run under -race,
// this is the regression test for the producer lifecycle: no goroutine
// leak, no deadlock.
func TestPrefetchCloseBeforeFirstNext(t *testing.T) {
	inner := newBlockingCursor()
	c := Prefetch(inner, 1)
	// Let the producer reach the inner Next so Close races a parked read.
	deadline := time.Now().Add(5 * time.Second)
	for inner.nexts.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	done := make(chan error, 1)
	go func() { done <- c.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close blocked on a parked producer")
	}
	// Unblock the parked Next (as a closing network stream would). The
	// producer must now exit and Prefetch's deferred close must close the
	// inner cursor — a second Close call on top of ours here.
	inner.Close()
	deadline = time.Now().Add(5 * time.Second)
	for inner.closes.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := inner.closes.Load(); n < 2 {
		t.Fatalf("producer never exited or never ran the deferred inner close (%d closes)", n)
	}
}

// countingCursor yields unlimited batches instantly, counting Next calls.
type countingCursor struct {
	schema *Schema
	nexts  atomic.Int32
	closed atomic.Bool
}

func (c *countingCursor) Schema() *Schema { return c.schema }
func (c *countingCursor) Next() ([]Tuple, error) {
	c.nexts.Add(1)
	return []Tuple{{Int(1)}}, nil
}
func (c *countingCursor) Close() error { c.closed.Store(true); return nil }

// TestPrefetchCloseOnFullChannel: with the read-ahead buffer full and the
// producer parked on the hand-off, Close must not deadlock, must stop the
// producer promptly (no racing ahead to refill the buffer), and must close
// the inner cursor.
func TestPrefetchCloseOnFullChannel(t *testing.T) {
	inner := &countingCursor{schema: SchemaOf("A")}
	const depth = 2
	c := Prefetch(inner, depth)
	// Wait for the buffer to fill: depth batches buffered plus one in the
	// producer's hand, i.e. depth+1 Next calls.
	deadline := time.Now().Add(5 * time.Second)
	for inner.nexts.Load() < depth+1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	produced := inner.nexts.Load()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for !inner.closed.Load() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !inner.closed.Load() {
		t.Fatal("inner cursor never closed")
	}
	// The producer was parked on a full channel at Close; stopping it must
	// not consume more than the one in-flight batch it already held.
	if after := inner.nexts.Load(); after > produced+1 {
		t.Fatalf("producer kept reading after Close: %d Next calls grew to %d", produced, after)
	}
}

// errCursor fails after yielding one batch.
type errCursor struct {
	schema *Schema
	sent   bool
}

var errBroken = errors.New("broken producer")

func (c *errCursor) Schema() *Schema { return c.schema }
func (c *errCursor) Next() ([]Tuple, error) {
	if c.sent {
		return nil, errBroken
	}
	c.sent = true
	return []Tuple{{Int(1)}}, nil
}
func (c *errCursor) Close() error { return nil }

func TestPrefetchPropagatesErrors(t *testing.T) {
	c := Prefetch(&errCursor{schema: SchemaOf("A")}, 4)
	defer c.Close()
	if _, err := c.Next(); err != nil {
		t.Fatalf("first batch failed: %v", err)
	}
	if _, err := c.Next(); !errors.Is(err, errBroken) {
		t.Fatalf("error = %v, want errBroken", err)
	}
	// Errors are sticky.
	if _, err := c.Next(); !errors.Is(err, errBroken) {
		t.Fatalf("second error = %v, want errBroken", err)
	}
}

func TestDrainPropagatesErrors(t *testing.T) {
	if _, err := Drain(&errCursor{schema: SchemaOf("A")}); !errors.Is(err, errBroken) {
		t.Fatalf("Drain error = %v, want errBroken", err)
	}
}
