package rel

import (
	"io"
	"math"
	"testing"
)

// These tests pin the batch-boundary behaviour of the plain columnar
// cursors — the rel-side mirror of core's TestColCursorBatchEdges — plus the
// Column vector's lazy materialization and special-value fidelity.

func colTestTuples(n int) []Tuple {
	tuples := make([]Tuple, n)
	for i := range tuples {
		tuples[i] = Tuple{Int(int64(i)), String("v")}
	}
	return tuples
}

func drainCol(t *testing.T, c ColCursor) (rows int, batches []int) {
	t.Helper()
	for {
		b, err := c.NextCol()
		if err == io.EOF {
			return rows, batches
		}
		if err != nil {
			t.Fatal(err)
		}
		if b.Len() == 0 {
			t.Fatal("cursor yielded an empty batch")
		}
		rows += b.Len()
		batches = append(batches, b.Len())
	}
}

func TestColCursorBatchEdges(t *testing.T) {
	schema := SchemaOf("K", "V")

	t.Run("batch size one", func(t *testing.T) {
		c := NewSliceCursor(schema, colTestTuples(4), 1).(ColCursor)
		rows, batches := drainCol(t, c)
		if rows != 4 || len(batches) != 4 {
			t.Fatalf("got %d rows in %d batches, want 4 in 4", rows, len(batches))
		}
	})

	t.Run("empty input", func(t *testing.T) {
		c := NewSliceCursor(schema, nil, 3).(ColCursor)
		if _, err := c.NextCol(); err != io.EOF {
			t.Fatalf("NextCol on empty input: %v, want EOF", err)
		}
		if _, err := c.Next(); err != io.EOF {
			t.Fatalf("Next after EOF: %v, want EOF", err)
		}
	})

	t.Run("final short batch", func(t *testing.T) {
		c := NewSliceCursor(schema, colTestTuples(7), 3).(ColCursor)
		rows, batches := drainCol(t, c)
		if rows != 7 {
			t.Fatalf("got %d rows, want 7", rows)
		}
		want := []int{3, 3, 1}
		if len(batches) != len(want) {
			t.Fatalf("got batch sizes %v, want %v", batches, want)
		}
		for i := range want {
			if batches[i] != want[i] {
				t.Fatalf("got batch sizes %v, want %v", batches, want)
			}
		}
	})

	t.Run("close mid-stream", func(t *testing.T) {
		c := NewSliceCursor(schema, colTestTuples(9), 3).(ColCursor)
		if _, err := c.NextCol(); err != nil {
			t.Fatal(err)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := c.NextCol(); err != io.EOF {
			t.Fatalf("NextCol after Close: %v, want EOF", err)
		}
	})

	t.Run("interleave Next and NextCol", func(t *testing.T) {
		c := NewSliceCursor(schema, colTestTuples(7), 3).(ColCursor)
		b1, err := c.NextCol()
		if err != nil {
			t.Fatal(err)
		}
		r2, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		b3, err := c.NextCol()
		if err != nil {
			t.Fatal(err)
		}
		// Both forms advance the same stream: 3 + 3 + 1 rows.
		if b1.Len() != 3 || len(r2) != 3 || b3.Len() != 1 {
			t.Fatalf("interleaved sizes %d/%d/%d, want 3/3/1", b1.Len(), len(r2), b3.Len())
		}
		if got := b3.Value(0, 0).IntVal(); got != 6 {
			t.Fatalf("final batch starts at key %d, want 6", got)
		}
		if _, err := c.Next(); err != io.EOF {
			t.Fatalf("after exhaustion: %v, want EOF", err)
		}
	})

	t.Run("batch cursor skips empties", func(t *testing.T) {
		empty := NewColBatch(schema)
		full := FromTuples(schema, colTestTuples(2))
		c := NewColBatchCursor(schema, []*ColBatch{empty, full, empty})
		rows, batches := drainCol(t, c)
		if rows != 2 || len(batches) != 1 {
			t.Fatalf("got %d rows in %d batches, want 2 in 1", rows, len(batches))
		}
	})
}

// TestPrefetchColumnarHandOff: a columnar inner cursor stays columnar
// through Prefetch — NextCol yields the producer's batches, and Next serves
// their row views.
func TestPrefetchColumnarHandOff(t *testing.T) {
	schema := SchemaOf("K", "V")
	p := Prefetch(NewSliceCursor(schema, colTestTuples(10), 4), 2)
	pc, ok := p.(ColCursor)
	if !ok {
		t.Fatal("Prefetch over a ColCursor lost the columnar capability")
	}
	rows, batches := drainCol(t, pc)
	if rows != 10 {
		t.Fatalf("got %d rows, want 10", rows)
	}
	if len(batches) != 3 {
		t.Fatalf("got %d batches, want 3", len(batches))
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Row-only inner: Prefetch columnarizes on demand.
	p2 := Prefetch(FilterCursor(NewSliceCursor(schema, colTestTuples(6), 4), func(Tuple) bool { return true }), 2)
	pc2 := p2.(ColCursor)
	rows2, _ := drainCol(t, pc2)
	if rows2 != 6 {
		t.Fatalf("row-only inner: got %d rows, want 6", rows2)
	}
	p2.Close()
}

// TestColumnSpecialValues: the lazy Nums/Strs vectors hold -0 bit-exactly,
// NaN, empty strings and nulls, and report them back identically.
func TestColumnSpecialValues(t *testing.T) {
	var c Column
	vals := []Value{
		Null(),
		String(""),
		Int(0),
		Float(math.Copysign(0, -1)),
		Float(math.NaN()),
		Bool(false),
		String("x"),
		Int(math.MinInt64),
	}
	for _, v := range vals {
		c.Append(v)
	}
	if err := c.Validate(len(vals)); err != nil {
		t.Fatal(err)
	}
	for i, want := range vals {
		got := c.Value(i)
		if got.Kind() != want.Kind() || !want.Identical(got) {
			t.Fatalf("row %d: got %v (kind %d), want %v (kind %d)", i, got, got.Kind(), want, want.Kind())
		}
	}
	if bits := math.Float64bits(c.Value(3).FloatVal()); bits != math.Float64bits(math.Copysign(0, -1)) {
		t.Fatalf("-0 lost its sign bit: %#x", bits)
	}
	if f := c.Value(4).FloatVal(); !math.IsNaN(f) {
		t.Fatalf("NaN came back as %v", f)
	}
}

// TestColumnLazyVectors: columns of all-zero numeric payloads and no strings
// never materialize their payload vectors.
func TestColumnLazyVectors(t *testing.T) {
	var c Column
	for i := 0; i < 5; i++ {
		c.Append(Null())
	}
	if c.Nums != nil || c.Strs != nil {
		t.Fatal("null-only column materialized payload vectors")
	}
	c.Append(Int(7))
	if c.Nums == nil {
		t.Fatal("nonzero int did not materialize Nums")
	}
	if c.Strs != nil {
		t.Fatal("numeric column materialized Strs")
	}
	if got := c.Value(5).IntVal(); got != 7 {
		t.Fatalf("got %d, want 7", got)
	}
	// Earlier rows backfill as zero payloads.
	if got := c.Value(0); got.Kind() != KindNull {
		t.Fatalf("row 0 changed kind: %v", got)
	}
}
