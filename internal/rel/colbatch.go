package rel

import (
	"fmt"
	"hash/maphash"
	"io"
	"math"
	"slices"
)

// This file implements the column-major batch representation: one typed
// vector per attribute instead of one boxed Value per cell. A ColBatch holds
// the same information as a []Tuple batch, but kernels that hash, compare or
// ship it touch packed arrays — a kind byte per row, a uint64 payload word
// per row, string payloads sliced out of one shared blob — instead of
// chasing per-row slice headers. Row views (Rows) are carved out of a single
// batch-owned arena, exactly like Relation.NewRow's chunks, so handing a
// columnar batch to a []Tuple consumer costs two allocations per batch, not
// two per row.

// Column is one typed vector of a ColBatch: the values of one attribute
// across the batch's rows, struct-of-arrays style.
//
// Kinds tags every row. Nums packs the fixed-width payloads (int64 bits,
// float64 bits, bool 0/1) and Strs the string payloads; both are lazily
// materialized — a column whose payloads are all zero (every Int(0), Null,
// Bool(false)) keeps Nums nil, and a column with no string rows keeps Strs
// nil. Nulls is a bitmap of the KindNull rows (trailing zero words elided),
// for kernels that want to skip null runs without reading Kinds.
type Column struct {
	Kinds []Kind
	Nums  []uint64
	Strs  []string
	Nulls []uint64
}

// Append adds v as the next row of the column.
func (c *Column) Append(v Value) {
	n := len(c.Kinds)
	k := v.Kind()
	c.Kinds = append(c.Kinds, k)
	var num uint64
	switch k {
	case KindNull:
		c.setNull(n)
	case KindString:
		if c.Strs == nil {
			c.Strs = make([]string, n, cap(c.Kinds))
		}
	case KindInt:
		num = uint64(v.IntVal())
	case KindFloat:
		num = math.Float64bits(v.FloatVal())
	case KindBool:
		if v.BoolVal() {
			num = 1
		}
	}
	if num != 0 && c.Nums == nil {
		c.Nums = make([]uint64, n, cap(c.Kinds))
	}
	if c.Nums != nil {
		c.Nums = append(c.Nums, num)
	}
	if c.Strs != nil {
		s := ""
		if k == KindString {
			s = v.Str()
		}
		c.Strs = append(c.Strs, s)
	}
}

// Len returns the number of rows.
func (c *Column) Len() int { return len(c.Kinds) }

// Grow reserves capacity for n more rows, so a kernel that knows its output
// bound pays one allocation per vector instead of the append growth series
// (which for large slices totals several times the final size). Vectors not
// yet materialized stay lazy — Append sizes them by cap(Kinds) when they
// first materialize, so they inherit the reservation.
func (c *Column) Grow(n int) {
	c.Kinds = slices.Grow(c.Kinds, n)
	if c.Nums != nil {
		c.Nums = slices.Grow(c.Nums, n)
	}
	if c.Strs != nil {
		c.Strs = slices.Grow(c.Strs, n)
	}
}

func (c *Column) setNull(i int) {
	w := i >> 6
	for len(c.Nulls) <= w {
		c.Nulls = append(c.Nulls, 0)
	}
	c.Nulls[w] |= 1 << (uint(i) & 63)
}

// SetNull marks row i in the null bitmap. Append maintains the bitmap
// itself; decoders rebuilding a column from its kind tags use SetNull.
func (c *Column) SetNull(i int) { c.setNull(i) }

// IsNull reports whether row i is KindNull, from the bitmap.
func (c *Column) IsNull(i int) bool {
	w := i >> 6
	return w < len(c.Nulls) && c.Nulls[w]&(1<<(uint(i)&63)) != 0
}

// num returns the packed payload word of row i (0 when the column never
// materialized payload storage).
func (c *Column) num(i int) uint64 {
	if c.Nums == nil {
		return 0
	}
	return c.Nums[i]
}

// Value reconstructs the boxed value of row i.
func (c *Column) Value(i int) Value {
	switch c.Kinds[i] {
	case KindString:
		if c.Strs == nil {
			return String("")
		}
		return String(c.Strs[i])
	case KindInt:
		return Int(int64(c.num(i)))
	case KindFloat:
		return Float(math.Float64frombits(c.num(i)))
	case KindBool:
		return Bool(c.num(i) != 0)
	default:
		return Null()
	}
}

// HashFoldInto folds the column's per-row value hashes into dst — one fold
// accumulator per row, dst[i] starting at HashFoldInit before the first
// column. After every column of a batch is folded in schema order, dst[i]
// equals Tuple.Hash64 of row i exactly: this is the columnar half of the
// combinable hash scheme (see hash.go), hashing a column stripe in one pass
// with no Value boxing.
func (c *Column) HashFoldInto(seed maphash.Seed, dst []uint64) {
	for i := range dst {
		var vh uint64
		switch c.Kinds[i] {
		case KindString:
			s := ""
			if c.Strs != nil {
				s = c.Strs[i]
			}
			vh = maphash.String(seed, s) ^ stringKindMark
		case KindInt:
			vh = scalarHash64(seed, KindInt, c.num(i))
		case KindFloat:
			vh = scalarHash64(seed, KindFloat, floatHashBits(math.Float64frombits(c.num(i))))
		case KindBool:
			vh = scalarHash64(seed, KindBool, c.num(i))
		default:
			vh = scalarHash64(seed, c.Kinds[i], 0)
		}
		dst[i] = HashFold(dst[i], vh)
	}
}

// Validate checks the column's vectors are mutually consistent for n rows —
// the decode-side guard for columns built from untrusted wire bytes.
func (c *Column) Validate(n int) error {
	if len(c.Kinds) != n {
		return fmt.Errorf("rel: column has %d kind tags for %d rows", len(c.Kinds), n)
	}
	if c.Nums != nil && len(c.Nums) != n {
		return fmt.Errorf("rel: column has %d payload words for %d rows", len(c.Nums), n)
	}
	if c.Strs != nil && len(c.Strs) != n {
		return fmt.Errorf("rel: column has %d string payloads for %d rows", len(c.Strs), n)
	}
	for _, k := range c.Kinds {
		switch k {
		case KindNull, KindString, KindInt, KindFloat, KindBool:
		default:
			return fmt.Errorf("rel: column has invalid kind tag %d", k)
		}
	}
	return nil
}

// ColBatch is a column-major batch of rows over a schema: one Column per
// attribute, all the same length.
type ColBatch struct {
	schema *Schema
	cols   []Column
	n      int
	rows   []Tuple // lazy row-view cache; see Rows
}

// NewColBatch returns an empty columnar batch over schema.
func NewColBatch(schema *Schema) *ColBatch {
	return &ColBatch{schema: schema, cols: make([]Column, schema.Len())}
}

// BuildColBatch assembles a batch directly from decoded column vectors (the
// wire codec's entry point), validating every vector against n.
func BuildColBatch(schema *Schema, cols []Column, n int) (*ColBatch, error) {
	if len(cols) != schema.Len() {
		return nil, fmt.Errorf("rel: %d columns for schema %s", len(cols), schema)
	}
	for i := range cols {
		if err := cols[i].Validate(n); err != nil {
			return nil, fmt.Errorf("column %d: %w", i, err)
		}
	}
	return &ColBatch{schema: schema, cols: cols, n: n}, nil
}

// FromTuples converts a row batch to columnar form.
func FromTuples(schema *Schema, tuples []Tuple) *ColBatch {
	b := NewColBatch(schema)
	for _, t := range tuples {
		b.AppendTuple(t)
	}
	return b
}

// Schema returns the batch's schema.
func (b *ColBatch) Schema() *Schema { return b.schema }

// Len returns the number of rows.
func (b *ColBatch) Len() int { return b.n }

// Col returns the vector of attribute ci.
func (b *ColBatch) Col(ci int) *Column { return &b.cols[ci] }

// Value returns the value at (row, col).
func (b *ColBatch) Value(row, col int) Value { return b.cols[col].Value(row) }

// AppendTuple adds one row. The batch must not have been handed out through
// Rows yet (batches are write-once, then read).
func (b *ColBatch) AppendTuple(t Tuple) {
	for ci := range b.cols {
		b.cols[ci].Append(t[ci])
	}
	b.n++
	b.rows = nil
}

// Hashes fills dst (grown if needed) with Tuple.Hash64 of every row, one
// column stripe at a time. It returns the filled slice.
func (b *ColBatch) Hashes(seed maphash.Seed, dst []uint64) []uint64 {
	if cap(dst) < b.n {
		dst = make([]uint64, b.n)
	}
	dst = dst[:b.n]
	for i := range dst {
		dst[i] = HashFoldInit
	}
	for ci := range b.cols {
		b.cols[ci].HashFoldInto(seed, dst)
	}
	return dst
}

// Rows returns row views over the batch: tuple headers sliced out of one
// batch-owned arena (two allocations per batch, amortized over reuse — the
// view is computed once and cached). The views satisfy the Cursor batch
// contract: immutable, valid for the life of the batch.
func (b *ColBatch) Rows() []Tuple {
	if b.rows != nil || b.n == 0 {
		return b.rows
	}
	d := len(b.cols)
	if d == 0 {
		rows := make([]Tuple, b.n)
		for i := range rows {
			rows[i] = Tuple{}
		}
		b.rows = rows
		return b.rows
	}
	arena := make([]Value, b.n*d)
	for ci := range b.cols {
		c := &b.cols[ci]
		for i := 0; i < b.n; i++ {
			arena[i*d+ci] = c.Value(i)
		}
	}
	rows := make([]Tuple, b.n)
	for i := range rows {
		rows[i] = arena[i*d : (i+1)*d : (i+1)*d]
	}
	b.rows = rows
	return b.rows
}

// ColCursor is the columnar capability of a Cursor: NextCol yields the next
// batch in column-major form (nil, io.EOF when exhausted). Interleaving
// NextCol and Next calls is allowed — both advance the same stream; Next is
// NextCol plus the row view. Prefetch and the parallel cursor stages hand
// the row views along, which alias the column batch rather than re-boxing
// it.
type ColCursor interface {
	Cursor
	NextCol() (*ColBatch, error)
}

// colBatchCursor streams prebuilt column batches.
type colBatchCursor struct {
	schema  *Schema
	batches []*ColBatch
	at      int
}

// NewColBatchCursor returns a cursor over a sequence of column batches.
// Empty batches are skipped (the Cursor contract yields non-empty batches
// only).
func NewColBatchCursor(schema *Schema, batches []*ColBatch) ColCursor {
	return &colBatchCursor{schema: schema, batches: batches}
}

func (c *colBatchCursor) Schema() *Schema { return c.schema }

func (c *colBatchCursor) NextCol() (*ColBatch, error) {
	for c.at < len(c.batches) {
		b := c.batches[c.at]
		c.at++
		if b.Len() > 0 {
			return b, nil
		}
	}
	return nil, io.EOF
}

func (c *colBatchCursor) Next() ([]Tuple, error) {
	b, err := c.NextCol()
	if err != nil {
		return nil, err
	}
	return b.Rows(), nil
}

func (c *colBatchCursor) Close() error {
	c.at = len(c.batches)
	return nil
}

// colSliceCursor cuts an in-memory tuple slice into column batches.
type colSliceCursor struct {
	schema *Schema
	tuples []Tuple
	at     int
	batch  int
}

// NewColSliceCursor returns a columnar cursor over tuples with the given
// batch size (values < 1 mean DefaultBatchSize): each NextCol converts the
// next batch-sized run of rows to a fresh ColBatch.
func NewColSliceCursor(schema *Schema, tuples []Tuple, batch int) ColCursor {
	if batch < 1 {
		batch = DefaultBatchSize
	}
	return &colSliceCursor{schema: schema, tuples: tuples, batch: batch}
}

func (c *colSliceCursor) Schema() *Schema { return c.schema }

func (c *colSliceCursor) NextCol() (*ColBatch, error) {
	if c.at >= len(c.tuples) {
		return nil, io.EOF
	}
	end := c.at + c.batch
	if end > len(c.tuples) {
		end = len(c.tuples)
	}
	b := FromTuples(c.schema, c.tuples[c.at:end])
	c.at = end
	return b, nil
}

func (c *colSliceCursor) Next() ([]Tuple, error) {
	b, err := c.NextCol()
	if err != nil {
		return nil, err
	}
	return b.Rows(), nil
}

func (c *colSliceCursor) Close() error {
	c.at = len(c.tuples)
	return nil
}
