package rel

import (
	"encoding/binary"
	"hash/maphash"
	"math"
)

// This file implements the hash-native identity path: instead of
// materializing a string key per value (Value.Key) or per tuple (Tuple.Key)
// in every dedup or join inner loop, callers derive a 64-bit hash and bucket
// by it, confirming candidates with Equal on collision. Value.Key stays as
// the rendering and reference-semantics form; the hash is the hot-path form.
//
// The encoding fed to the hash mirrors Key's injectivity: a kind tag is
// written before the payload (so Int(1) and String("1") differ) and strings
// are length-prefixed (so tuples ("ab","c") and ("a","bc") differ).

// nanBits is the canonical bit pattern hashed for every NaN payload.
const nanBits = 0x7FF8000000000001

// Seed is the process-wide seed used by the relational engine's tuple
// hashing. All relations hashed within one process share it so that hashes
// are comparable across relations; it varies between processes, which keeps
// bucket layouts unpredictable.
var Seed = maphash.MakeSeed()

// HashInto mixes the value into h using the kind-tagged encoding above.
func (v Value) HashInto(h *maphash.Hash) {
	switch v.kind {
	case KindNull:
		h.WriteByte(byte(KindNull))
	case KindString:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(len(v.str)))
		h.WriteByte(byte(KindString))
		h.Write(buf[:])
		h.WriteString(v.str)
	case KindInt:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(v.num))
		h.WriteByte(byte(KindInt))
		h.Write(buf[:])
	case KindFloat:
		f := v.fnum
		if f == 0 {
			f = 0 // Identical treats +0 and -0 as one datum; hash them identically.
		}
		bits := math.Float64bits(f)
		if f != f {
			bits = nanBits // every NaN is one datum (see Value.Identical)
		}
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], bits)
		h.WriteByte(byte(KindFloat))
		h.Write(buf[:])
	case KindBool:
		b := byte(0)
		if v.b {
			b = 1
		}
		h.WriteByte(byte(KindBool))
		h.WriteByte(b)
	default:
		h.WriteByte(byte(v.kind))
	}
}

// Hash64 returns a 64-bit hash of the value under seed. Identical values
// hash identically; distinct values collide only with ordinary hash
// probability, and callers must confirm bucket candidates with Identical.
func (v Value) Hash64(seed maphash.Seed) uint64 {
	var h maphash.Hash
	h.SetSeed(seed)
	v.HashInto(&h)
	return h.Sum64()
}

// Hash64 returns a 64-bit hash of the tuple under seed, usable as the bucket
// key for hashing-based duplicate elimination and joins. Tuples with
// Identical values hash identically.
func (t Tuple) Hash64(seed maphash.Seed) uint64 {
	var h maphash.Hash
	h.SetSeed(seed)
	for _, v := range t {
		v.HashInto(&h)
	}
	return h.Sum64()
}

// BucketIndex buckets positions (into some caller-owned slice) by 64-bit
// hash, with candidate confirmation delegated to the caller — the shared
// core of the engines' hash-based dedup tables: a hash collision degrades to
// an extra comparison, never to a wrong answer. Both the polygen algebra
// (package core, over tuple data portions) and the untagged baseline
// (package relalg, over plain tuples) build on it.
type BucketIndex struct {
	buckets map[uint64][]int
}

// NewBucketIndex returns an index sized for about capacity entries.
func NewBucketIndex(capacity int) BucketIndex {
	return BucketIndex{buckets: make(map[uint64][]int, capacity)}
}

// Find returns the first bucketed position under h for which same reports a
// true match.
func (ix BucketIndex) Find(h uint64, same func(pos int) bool) (int, bool) {
	for _, at := range ix.buckets[h] {
		if same(at) {
			return at, true
		}
	}
	return 0, false
}

// Bucket returns every position bucketed under h (collision candidates
// included — the caller confirms each).
func (ix BucketIndex) Bucket(h uint64) []int { return ix.buckets[h] }

// Add buckets pos under h.
func (ix BucketIndex) Add(h uint64, pos int) {
	ix.buckets[h] = append(ix.buckets[h], pos)
}

// PartitionOf maps a 64-bit hash to one of parts radix partitions using a
// multiply-shift range reduction over the hash's high 32 bits, so the hash
// space splits into parts contiguous disjoint ranges for any partition
// count — powers of two are not required. Equal hashes always land in the
// same partition, which is what lets partitioned hash operators give each
// worker exclusive ownership of its buckets: every tuple that could
// collide, deduplicate or join with another shares its partition.
func PartitionOf(h uint64, parts int) int {
	if parts <= 1 {
		return 0
	}
	return int(((h >> 32) * uint64(parts)) >> 32)
}

// PartitionedBucketIndex is a BucketIndex sharded by PartitionOf: partition
// w owns the w-th contiguous range of the hash space. A build where worker
// w only Adds hashes with Partition(h) == w touches no shared state —
// per-partition builds and probes need no locks — while Find/Bucket route
// any hash to its owning shard, so a fully built index reads like one
// BucketIndex.
type PartitionedBucketIndex struct {
	shards []BucketIndex
}

// NewPartitionedBucketIndex returns an index with parts shards (parts < 1
// means 1), each sized for about capacity entries.
func NewPartitionedBucketIndex(parts, capacity int) *PartitionedBucketIndex {
	if parts < 1 {
		parts = 1
	}
	shards := make([]BucketIndex, parts)
	for i := range shards {
		shards[i] = NewBucketIndex(capacity)
	}
	return &PartitionedBucketIndex{shards: shards}
}

// Parts returns the number of shards.
func (ix *PartitionedBucketIndex) Parts() int { return len(ix.shards) }

// Partition returns the shard owning hash h.
func (ix *PartitionedBucketIndex) Partition(h uint64) int {
	return PartitionOf(h, len(ix.shards))
}

// Find routes to the owning shard's Find.
func (ix *PartitionedBucketIndex) Find(h uint64, same func(pos int) bool) (int, bool) {
	return ix.shards[ix.Partition(h)].Find(h, same)
}

// Bucket routes to the owning shard's Bucket.
func (ix *PartitionedBucketIndex) Bucket(h uint64) []int {
	return ix.shards[ix.Partition(h)].Bucket(h)
}

// Add buckets pos under h in the owning shard. Concurrent Adds are safe iff
// each concurrent caller only adds hashes of one distinct partition — the
// contract of a partitioned parallel build.
func (ix *PartitionedBucketIndex) Add(h uint64, pos int) {
	ix.shards[ix.Partition(h)].Add(h, pos)
}
