package rel

import (
	"encoding/binary"
	"hash/maphash"
	"math"
)

// This file implements the hash-native identity path: instead of
// materializing a string key per value (Value.Key) or per tuple (Tuple.Key)
// in every dedup or join inner loop, callers derive a 64-bit hash and bucket
// by it, confirming candidates with Equal on collision. Value.Key stays as
// the rendering and reference-semantics form; the hash is the hot-path form.
//
// Hashing is one-shot and combinable: every value hashes independently to a
// 64-bit word (via maphash.String/maphash.Bytes — no incremental hash state,
// no per-value allocation), and a tuple hash is the HashFold of its value
// hashes in column order. The columnar kernels exploit this directly — a
// column stripe is hashed value-by-value into a fold accumulator per row, and
// the result is bit-identical to the row-major Tuple.Hash64, so row-built and
// column-built hash indexes interoperate.

// nanBits is the canonical bit pattern hashed for every NaN payload.
const nanBits = 0x7FF8000000000001

// Seed is the process-wide seed used by the relational engine's tuple
// hashing. All relations hashed within one process share it so that hashes
// are comparable across relations; it varies between processes, which keeps
// bucket layouts unpredictable.
var Seed = maphash.MakeSeed()

// HashFoldInit is the accumulator a tuple-hash fold starts from; fold one
// value hash per column with HashFold.
const HashFoldInit = 0xCBF29CE484222325

// hashFoldPrime spreads each folded value hash across the word (odd, so the
// multiply is a bijection); the high bits feed PartitionOf's range
// reduction.
const hashFoldPrime = 0x9E3779B97F4A7C15

// stringKindMark separates the string hash family from the scalar families
// (a kind tag, folded in after the content hash).
const stringKindMark = 0xA24BAED4963EE407

// HashFold folds the next column's value hash vh into the row accumulator h.
// The fold is order-dependent — ("ab","c") and ("a","bc") fold differently —
// which preserves tuple-framing injectivity without length prefixes.
func HashFold(h, vh uint64) uint64 { return (h ^ vh) * hashFoldPrime }

// scalarHash64 hashes a kind tag plus a fixed 8-byte payload in one shot.
func scalarHash64(seed maphash.Seed, k Kind, payload uint64) uint64 {
	var buf [9]byte
	buf[0] = byte(k)
	binary.LittleEndian.PutUint64(buf[1:], payload)
	return maphash.Bytes(seed, buf[:])
}

// floatHashBits normalizes a float payload to its hashed bit pattern: +0
// and -0 are one datum, and every NaN is one datum (see Value.Identical).
func floatHashBits(f float64) uint64 {
	if f != f {
		return nanBits
	}
	if f == 0 {
		return 0
	}
	return math.Float64bits(f)
}

// Hash64 returns a 64-bit hash of the value under seed. Identical values
// hash identically; distinct values collide only with ordinary hash
// probability, and callers must confirm bucket candidates with Identical.
func (v Value) Hash64(seed maphash.Seed) uint64 {
	switch v.kind {
	case KindString:
		return maphash.String(seed, v.str) ^ stringKindMark
	case KindInt:
		return scalarHash64(seed, KindInt, uint64(v.num))
	case KindFloat:
		return scalarHash64(seed, KindFloat, floatHashBits(v.fnum))
	case KindBool:
		b := uint64(0)
		if v.b {
			b = 1
		}
		return scalarHash64(seed, KindBool, b)
	default:
		return scalarHash64(seed, v.kind, 0)
	}
}

// Hash64 returns a 64-bit hash of the tuple under seed, usable as the bucket
// key for hashing-based duplicate elimination and joins. Tuples with
// Identical values hash identically. The result is the HashFold of the
// per-value hashes, so columnar kernels hashing one column stripe at a time
// produce identical tuple hashes.
func (t Tuple) Hash64(seed maphash.Seed) uint64 {
	h := uint64(HashFoldInit)
	for _, v := range t {
		h = HashFold(h, v.Hash64(seed))
	}
	return h
}

// BucketIndex buckets positions (into some caller-owned slice) by 64-bit
// hash, with candidate confirmation delegated to the caller — the shared
// core of the engines' hash-based dedup tables: a hash collision degrades to
// an extra comparison, never to a wrong answer. Both the polygen algebra
// (package core, over tuple data portions) and the untagged baseline
// (package relalg, over plain tuples) build on it.
//
// The implementation is a flat open-addressing table: an append-only entry
// log (hash, pos) plus a power-of-two slot array of 1-based entry indexes,
// probed linearly. Compared to the previous map[uint64][]int it allocates
// O(1) slices total instead of one per distinct hash, which is what makes
// large dedups allocation-cheap. Entries that share a full 64-bit hash are
// visited in insertion order (a later insert always probes past the earlier
// ones; rehashing re-places entries in log order).
//
// A BucketIndex is a handle: copies share the same table, so it can be
// passed by value. There is no deletion.
type BucketIndex struct {
	s *bucketStore
}

type bucketStore struct {
	slots  []int32 // 1-based entry index; 0 = empty; len is a power of two
	mask   uint64
	hashes []uint64
	poss   []int32
}

// NewBucketIndex returns an index sized for about capacity entries.
func NewBucketIndex(capacity int) BucketIndex {
	n := 16
	for n-n/4 < capacity {
		n <<= 1
	}
	s := &bucketStore{slots: make([]int32, n), mask: uint64(n - 1)}
	if capacity > 0 {
		s.hashes = make([]uint64, 0, capacity)
		s.poss = make([]int32, 0, capacity)
	}
	return BucketIndex{s: s}
}

// Len returns the number of entries added.
func (ix BucketIndex) Len() int { return len(ix.s.hashes) }

func (s *bucketStore) place(h uint64, id int32) {
	i := h & s.mask
	for s.slots[i] != 0 {
		i = (i + 1) & s.mask
	}
	s.slots[i] = id
}

func (s *bucketStore) grow() {
	n := len(s.slots) << 1
	s.slots = make([]int32, n)
	s.mask = uint64(n - 1)
	for e, h := range s.hashes {
		s.place(h, int32(e+1))
	}
}

// Add buckets pos under h.
func (ix BucketIndex) Add(h uint64, pos int) {
	s := ix.s
	if len(s.hashes)+1 > len(s.slots)-len(s.slots)/4 {
		s.grow()
	}
	s.hashes = append(s.hashes, h)
	s.poss = append(s.poss, int32(pos))
	s.place(h, int32(len(s.hashes)))
}

// Find returns the first bucketed position under h for which same reports a
// true match.
func (ix BucketIndex) Find(h uint64, same func(pos int) bool) (int, bool) {
	s := ix.s
	for i := h & s.mask; s.slots[i] != 0; i = (i + 1) & s.mask {
		e := s.slots[i] - 1
		if s.hashes[e] == h && same(int(s.poss[e])) {
			return int(s.poss[e]), true
		}
	}
	return 0, false
}

// ForEach visits every position bucketed under h in insertion order
// (collision candidates included — the caller confirms each), stopping early
// if fn returns false. This is the allocation-free form of Bucket for hot
// probe loops.
func (ix BucketIndex) ForEach(h uint64, fn func(pos int) bool) {
	s := ix.s
	for i := h & s.mask; s.slots[i] != 0; i = (i + 1) & s.mask {
		e := s.slots[i] - 1
		if s.hashes[e] == h && !fn(int(s.poss[e])) {
			return
		}
	}
}

// Bucket returns every position bucketed under h in insertion order. It
// allocates the result slice — tests and diagnostics use it; hot paths use
// ForEach.
func (ix BucketIndex) Bucket(h uint64) []int {
	var out []int
	ix.ForEach(h, func(pos int) bool { out = append(out, pos); return true })
	return out
}

// PartitionOf maps a 64-bit hash to one of parts radix partitions using a
// multiply-shift range reduction over the hash's high 32 bits, so the hash
// space splits into parts contiguous disjoint ranges for any partition
// count — powers of two are not required. Equal hashes always land in the
// same partition, which is what lets partitioned hash operators give each
// worker exclusive ownership of its buckets: every tuple that could
// collide, deduplicate or join with another shares its partition.
func PartitionOf(h uint64, parts int) int {
	if parts <= 1 {
		return 0
	}
	return int(((h >> 32) * uint64(parts)) >> 32)
}

// PartitionedBucketIndex is a BucketIndex sharded by PartitionOf: partition
// w owns the w-th contiguous range of the hash space. A build where worker
// w only Adds hashes with Partition(h) == w touches no shared state —
// per-partition builds and probes need no locks — while Find/ForEach route
// any hash to its owning shard, so a fully built index reads like one
// BucketIndex.
type PartitionedBucketIndex struct {
	shards []BucketIndex
}

// NewPartitionedBucketIndex returns an index with parts shards (parts < 1
// means 1), each sized for about capacity entries.
func NewPartitionedBucketIndex(parts, capacity int) *PartitionedBucketIndex {
	if parts < 1 {
		parts = 1
	}
	shards := make([]BucketIndex, parts)
	for i := range shards {
		shards[i] = NewBucketIndex(capacity)
	}
	return &PartitionedBucketIndex{shards: shards}
}

// Parts returns the number of shards.
func (ix *PartitionedBucketIndex) Parts() int { return len(ix.shards) }

// Partition returns the shard owning hash h.
func (ix *PartitionedBucketIndex) Partition(h uint64) int {
	return PartitionOf(h, len(ix.shards))
}

// Find routes to the owning shard's Find.
func (ix *PartitionedBucketIndex) Find(h uint64, same func(pos int) bool) (int, bool) {
	return ix.shards[ix.Partition(h)].Find(h, same)
}

// ForEach routes to the owning shard's ForEach.
func (ix *PartitionedBucketIndex) ForEach(h uint64, fn func(pos int) bool) {
	ix.shards[ix.Partition(h)].ForEach(h, fn)
}

// Bucket routes to the owning shard's Bucket (allocates; see
// BucketIndex.Bucket).
func (ix *PartitionedBucketIndex) Bucket(h uint64) []int {
	return ix.shards[ix.Partition(h)].Bucket(h)
}

// Add buckets pos under h in the owning shard. Concurrent Adds are safe iff
// each concurrent caller only adds hashes of one distinct partition — the
// contract of a partitioned parallel build.
func (ix *PartitionedBucketIndex) Add(h uint64, pos int) {
	ix.shards[ix.Partition(h)].Add(h, pos)
}
