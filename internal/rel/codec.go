package rel

// This file implements the plain (untagged) half of the binary columnar
// codec: the column-major byte layout shared by the wire protocol's "open"
// stream frames (internal/wire), the write-ahead segment log's insert
// payloads (internal/store), and the spill files of the budgeted hash
// operators. A frame is
//
//	+-------+--------+--------+----------------- ... -----+
//	| 0xC1  | ncols  | nrows  | column 0 | column 1 | ... |
//	+-------+--------+--------+----------------- ... -----+
//
// where every integer is an unsigned varint and every column is
//
//	+------------------+-------------------+---------------+-----------+
//	| kinds (nrows B)  | packed payloads   | string lens   | blob      |
//	+------------------+-------------------+---------------+-----------+
//
//	kinds     one Kind byte per row
//	payloads  row order: Int/Float 8 B little-endian, Bool 1 B, else none
//	lens      one uvarint per string row (byte length)
//	blob      the string bytes, concatenated in row order
//
// Decoding is O(columns) allocations, not O(rows x columns), and every
// length prefix is validated against the bytes actually remaining before
// anything is allocated, so a corrupt or hostile payload fails with an error
// instead of an over-allocation or a panic. The tagged variant (0xC2) lives
// in internal/core, which layers source/set directories and per-row tag
// vectors on top of these columns via FrameReader.

import (
	"encoding/binary"
	"fmt"
)

// FrameMagicPlain opens an untagged columnar frame (a ColBatch).
const FrameMagicPlain = 0xC1

// AppendColumnData appends one plain column in frame order: kinds, packed
// payloads, string lengths, string blob.
func AppendColumnData(buf []byte, c *Column) []byte {
	for _, k := range c.Kinds {
		buf = append(buf, byte(k))
	}
	for i, k := range c.Kinds {
		switch k {
		case KindInt, KindFloat:
			var w uint64
			if c.Nums != nil {
				w = c.Nums[i]
			}
			buf = binary.LittleEndian.AppendUint64(buf, w)
		case KindBool:
			var b byte
			if c.Nums != nil && c.Nums[i] != 0 {
				b = 1
			}
			buf = append(buf, b)
		}
	}
	for i, k := range c.Kinds {
		if k == KindString {
			var s string
			if c.Strs != nil {
				s = c.Strs[i]
			}
			buf = binary.AppendUvarint(buf, uint64(len(s)))
		}
	}
	for i, k := range c.Kinds {
		if k == KindString && c.Strs != nil {
			buf = append(buf, c.Strs[i]...)
		}
	}
	return buf
}

// AppendFrame appends one plain columnar frame to buf and returns it.
func AppendFrame(buf []byte, b *ColBatch) []byte {
	d := b.Schema().Len()
	buf = append(buf, FrameMagicPlain)
	buf = binary.AppendUvarint(buf, uint64(d))
	buf = binary.AppendUvarint(buf, uint64(b.Len()))
	for ci := 0; ci < d; ci++ {
		buf = AppendColumnData(buf, b.Col(ci))
	}
	return buf
}

// FrameReader walks a frame payload with explicit bounds checks; every read
// that would pass the end fails with an error instead of panicking.
type FrameReader struct {
	b  []byte
	at int
}

// NewFrameReader returns a reader over payload.
func NewFrameReader(payload []byte) *FrameReader { return &FrameReader{b: payload} }

// Remaining reports the bytes not yet consumed.
func (r *FrameReader) Remaining() int { return len(r.b) - r.at }

// U8 reads one byte.
func (r *FrameReader) U8() (byte, error) {
	if r.at >= len(r.b) {
		return 0, fmt.Errorf("rel: frame truncated at byte %d", r.at)
	}
	v := r.b[r.at]
	r.at++
	return v, nil
}

// Take consumes the next n bytes, returned as a capacity-capped subslice.
func (r *FrameReader) Take(n int) ([]byte, error) {
	if n < 0 || n > r.Remaining() {
		return nil, fmt.Errorf("rel: frame claims %d bytes with %d remaining", n, r.Remaining())
	}
	b := r.b[r.at : r.at+n : r.at+n]
	r.at += n
	return b, nil
}

// Uvarint reads one unsigned varint.
func (r *FrameReader) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.at:])
	if n <= 0 {
		return 0, fmt.Errorf("rel: frame has invalid varint at byte %d", r.at)
	}
	r.at += n
	return v, nil
}

// Length reads a uvarint that sizes a later read or allocation, rejecting
// values beyond limit — the cap that keeps a hostile length prefix from
// driving a huge allocation before the (absent) bytes are ever read.
func (r *FrameReader) Length(limit int) (int, error) {
	v, err := r.Uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(limit) {
		return 0, fmt.Errorf("rel: frame length %d exceeds %d available bytes", v, limit)
	}
	return int(v), nil
}

// DecodeColumn decodes one plain column of n rows.
func (r *FrameReader) DecodeColumn(n int) (Column, error) {
	var col Column
	kb, err := r.Take(n)
	if err != nil {
		return col, err
	}
	kinds := make([]Kind, n)
	payload, strs := 0, 0
	for i, b := range kb {
		k := Kind(b)
		kinds[i] = k
		switch k {
		case KindNull:
		case KindInt, KindFloat:
			payload += 8
		case KindBool:
			payload++
		case KindString:
			strs++
		default:
			return col, fmt.Errorf("rel: frame has invalid kind tag %d", b)
		}
	}
	col.Kinds = kinds
	for i, k := range kinds {
		if k == KindNull {
			col.SetNull(i)
		}
	}
	if payload > 0 {
		pb, err := r.Take(payload)
		if err != nil {
			return col, err
		}
		col.Nums = make([]uint64, n)
		at := 0
		for i, k := range kinds {
			switch k {
			case KindInt, KindFloat:
				col.Nums[i] = binary.LittleEndian.Uint64(pb[at:])
				at += 8
			case KindBool:
				if pb[at] > 1 {
					return col, fmt.Errorf("rel: frame has invalid bool payload %d", pb[at])
				}
				col.Nums[i] = uint64(pb[at])
				at++
			}
		}
	}
	if strs > 0 {
		// Lengths precede the blob, so the running total is always bounded by
		// the bytes still unread; one string(...) conversion per column, rows
		// sliced out of it zero-copy.
		lens := make([]int, 0, strs)
		total := 0
		for _, k := range kinds {
			if k != KindString {
				continue
			}
			l, err := r.Length(r.Remaining())
			if err != nil {
				return col, err
			}
			total += l
			if total > r.Remaining() {
				return col, fmt.Errorf("rel: frame string blob of %d bytes exceeds %d remaining", total, r.Remaining())
			}
			lens = append(lens, l)
		}
		blob, err := r.Take(total)
		if err != nil {
			return col, err
		}
		bs := string(blob)
		col.Strs = make([]string, n)
		at, li := 0, 0
		for i, k := range kinds {
			if k == KindString {
				col.Strs[i] = bs[at : at+lens[li]]
				at += lens[li]
				li++
			}
		}
	}
	return col, nil
}

// DecodeFrame decodes one plain columnar frame against schema.
func DecodeFrame(payload []byte, schema *Schema) (*ColBatch, error) {
	r := NewFrameReader(payload)
	magic, err := r.U8()
	if err != nil {
		return nil, err
	}
	if magic != FrameMagicPlain {
		return nil, fmt.Errorf("rel: frame magic %#x, want %#x", magic, FrameMagicPlain)
	}
	// ncols needs no byte-bound cap (a zero-row frame is smaller than its
	// column count): it must equal the schema width, which bounds it.
	ncols, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if ncols != uint64(schema.Len()) {
		return nil, fmt.Errorf("rel: frame has %d columns for schema %s", ncols, schema)
	}
	// Every row costs at least one kind byte per column, and zero-width
	// frames carry no rows; either way nrows is bounded by the payload size.
	nrows, err := r.Length(r.Remaining())
	if err != nil {
		return nil, err
	}
	cols := make([]Column, ncols)
	for ci := range cols {
		if cols[ci], err = r.DecodeColumn(nrows); err != nil {
			return nil, fmt.Errorf("rel: column %d: %w", ci, err)
		}
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("rel: frame has %d trailing bytes", r.Remaining())
	}
	return BuildColBatch(schema, cols, nrows)
}
