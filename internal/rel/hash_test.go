package rel

import (
	"hash/maphash"
	"math"
	"testing"
	"testing/quick"
)

// TestHash64AgreesWithEqual: Equal values must hash identically, and (with
// overwhelming probability) unequal values differently under one seed.
func TestHash64AgreesWithEqual(t *testing.T) {
	seed := maphash.MakeSeed()
	values := []Value{
		Null(), String(""), String("a"), String("ab"), String("\x00"),
		Int(0), Int(1), Int(-1), Float(0), Float(1), Float(-1),
		Bool(true), Bool(false),
	}
	for _, v := range values {
		for _, w := range values {
			hv, hw := v.Hash64(seed), w.Hash64(seed)
			if v.Equal(w) && hv != hw {
				t.Errorf("%v and %v are Equal but hash to %x and %x", v, w, hv, hw)
			}
			if !v.Equal(w) && hv == hw {
				t.Errorf("%v and %v are unequal but share hash %x", v, w, hv)
			}
		}
	}
}

// TestHash64SignedZero: Equal treats +0.0 and -0.0 as equal, so they must
// share a hash.
func TestHash64SignedZero(t *testing.T) {
	seed := maphash.MakeSeed()
	pos, neg := Float(0), Float(math.Copysign(0, -1))
	if !pos.Equal(neg) {
		t.Fatal("premise: +0 and -0 should be Equal")
	}
	if pos.Hash64(seed) != neg.Hash64(seed) {
		t.Error("+0 and -0 hash differently")
	}
}

// TestTupleHash64Framing: string payloads are length-prefixed, so shifting
// bytes between adjacent values must change the tuple hash.
func TestTupleHash64Framing(t *testing.T) {
	seed := maphash.MakeSeed()
	a := Tuple{String("ab"), String("c")}
	b := Tuple{String("a"), String("bc")}
	if a.Hash64(seed) == b.Hash64(seed) {
		t.Error(`("ab","c") and ("a","bc") share a tuple hash`)
	}
	if a.Hash64(seed) != (Tuple{String("ab"), String("c")}).Hash64(seed) {
		t.Error("tuple hash unstable")
	}
}

// TestTupleHash64Quick: random string tuples hash equal iff Equal.
func TestTupleHash64Quick(t *testing.T) {
	seed := maphash.MakeSeed()
	f := func(a, b []string) bool {
		ta := make(Tuple, len(a))
		for i, s := range a {
			ta[i] = String(s)
		}
		tb := make(Tuple, len(b))
		for i, s := range b {
			tb[i] = String(s)
		}
		return ta.Equal(tb) == (ta.Hash64(seed) == tb.Hash64(seed))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPartitionOf: partitions are in range, deterministic, and — for the
// partitioned hash operators' ownership invariant — a function of the hash
// alone, including at non-power-of-two counts.
func TestPartitionOf(t *testing.T) {
	for _, parts := range []int{1, 2, 3, 7, 16, 64} {
		counts := make([]int, parts)
		for i := 0; i < 10000; i++ {
			h := Tuple{Int(int64(i))}.Hash64(Seed)
			w := PartitionOf(h, parts)
			if w < 0 || w >= parts {
				t.Fatalf("parts=%d: partition %d out of range", parts, w)
			}
			if again := PartitionOf(h, parts); again != w {
				t.Fatalf("parts=%d: partition not deterministic", parts)
			}
			counts[w]++
		}
		if parts > 1 {
			// Hashes are uniform, so no partition should be empty at 10000
			// draws (probability ~ (1-1/parts)^10000, i.e. never).
			for w, c := range counts {
				if c == 0 {
					t.Fatalf("parts=%d: partition %d empty — skewed range reduction", parts, w)
				}
			}
		}
	}
	if PartitionOf(^uint64(0), 7) != 6 {
		t.Fatalf("max hash must land in the last partition")
	}
	if PartitionOf(12345, 0) != 0 || PartitionOf(12345, -1) != 0 {
		t.Fatalf("parts < 1 must collapse to partition 0")
	}
}

// TestPartitionedBucketIndexMatchesFlat: a partitioned index behaves like
// one flat BucketIndex — same Find results, same Bucket contents in the
// same order — at partition counts including non-powers of two.
func TestPartitionedBucketIndexMatchesFlat(t *testing.T) {
	tuples := make([]Tuple, 300)
	for i := range tuples {
		tuples[i] = Tuple{Int(int64(i % 50)), String("x")} // heavy duplicates
	}
	for _, parts := range []int{1, 2, 7, 16} {
		flat := NewBucketIndex(len(tuples))
		sharded := NewPartitionedBucketIndex(parts, len(tuples)/parts+1)
		if sharded.Parts() != parts {
			t.Fatalf("Parts() = %d, want %d", sharded.Parts(), parts)
		}
		for i, tup := range tuples {
			h := tup.Hash64(Seed)
			flat.Add(h, i)
			sharded.Add(h, i)
		}
		for i, tup := range tuples {
			h := tup.Hash64(Seed)
			fb, sb := flat.Bucket(h), sharded.Bucket(h)
			if len(fb) != len(sb) {
				t.Fatalf("parts=%d: bucket sizes differ for tuple %d: %d vs %d", parts, i, len(fb), len(sb))
			}
			for j := range fb {
				if fb[j] != sb[j] {
					t.Fatalf("parts=%d: bucket order differs for tuple %d", parts, i)
				}
			}
			same := func(pos int) bool { return tuples[pos].Identical(tup) }
			fpos, fok := flat.Find(h, same)
			spos, sok := sharded.Find(h, same)
			if fok != sok || fpos != spos {
				t.Fatalf("parts=%d: Find(%d) = (%d,%v) sharded vs (%d,%v) flat", parts, i, spos, sok, fpos, fok)
			}
		}
	}
}

// TestNewRowIsolation: rows carved from one arena must not alias; appending
// through a row's capacity must not clobber its neighbor.
func TestNewRowIsolation(t *testing.T) {
	r := NewRelation("T", SchemaOf("A", "B"))
	r1 := r.NewRow(2)
	r1[0], r1[1] = String("x"), String("y")
	r2 := r.NewRow(2)
	r2[0], r2[1] = String("p"), String("q")
	if !r1.Equal(Tuple{String("x"), String("y")}) {
		t.Fatalf("row 1 corrupted: %v", r1)
	}
	grown := append(r1[:0], String("x2"), String("y2"), String("z2"))
	if !r2.Equal(Tuple{String("p"), String("q")}) {
		t.Fatalf("append through row 1 clobbered row 2: %v", r2)
	}
	_ = grown
	// Chunk rollover: rows larger than a chunk still come out whole.
	big := r.NewRow(10000)
	if len(big) != 10000 {
		t.Fatalf("big row length %d", len(big))
	}
}
