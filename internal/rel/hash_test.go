package rel

import (
	"hash/maphash"
	"math"
	"testing"
	"testing/quick"
)

// TestHash64AgreesWithEqual: Equal values must hash identically, and (with
// overwhelming probability) unequal values differently under one seed.
func TestHash64AgreesWithEqual(t *testing.T) {
	seed := maphash.MakeSeed()
	values := []Value{
		Null(), String(""), String("a"), String("ab"), String("\x00"),
		Int(0), Int(1), Int(-1), Float(0), Float(1), Float(-1),
		Bool(true), Bool(false),
	}
	for _, v := range values {
		for _, w := range values {
			hv, hw := v.Hash64(seed), w.Hash64(seed)
			if v.Equal(w) && hv != hw {
				t.Errorf("%v and %v are Equal but hash to %x and %x", v, w, hv, hw)
			}
			if !v.Equal(w) && hv == hw {
				t.Errorf("%v and %v are unequal but share hash %x", v, w, hv)
			}
		}
	}
}

// TestHash64SignedZero: Equal treats +0.0 and -0.0 as equal, so they must
// share a hash.
func TestHash64SignedZero(t *testing.T) {
	seed := maphash.MakeSeed()
	pos, neg := Float(0), Float(math.Copysign(0, -1))
	if !pos.Equal(neg) {
		t.Fatal("premise: +0 and -0 should be Equal")
	}
	if pos.Hash64(seed) != neg.Hash64(seed) {
		t.Error("+0 and -0 hash differently")
	}
}

// TestTupleHash64Framing: string payloads are length-prefixed, so shifting
// bytes between adjacent values must change the tuple hash.
func TestTupleHash64Framing(t *testing.T) {
	seed := maphash.MakeSeed()
	a := Tuple{String("ab"), String("c")}
	b := Tuple{String("a"), String("bc")}
	if a.Hash64(seed) == b.Hash64(seed) {
		t.Error(`("ab","c") and ("a","bc") share a tuple hash`)
	}
	if a.Hash64(seed) != (Tuple{String("ab"), String("c")}).Hash64(seed) {
		t.Error("tuple hash unstable")
	}
}

// TestTupleHash64Quick: random string tuples hash equal iff Equal.
func TestTupleHash64Quick(t *testing.T) {
	seed := maphash.MakeSeed()
	f := func(a, b []string) bool {
		ta := make(Tuple, len(a))
		for i, s := range a {
			ta[i] = String(s)
		}
		tb := make(Tuple, len(b))
		for i, s := range b {
			tb[i] = String(s)
		}
		return ta.Equal(tb) == (ta.Hash64(seed) == tb.Hash64(seed))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestNewRowIsolation: rows carved from one arena must not alias; appending
// through a row's capacity must not clobber its neighbor.
func TestNewRowIsolation(t *testing.T) {
	r := NewRelation("T", SchemaOf("A", "B"))
	r1 := r.NewRow(2)
	r1[0], r1[1] = String("x"), String("y")
	r2 := r.NewRow(2)
	r2[0], r2[1] = String("p"), String("q")
	if !r1.Equal(Tuple{String("x"), String("y")}) {
		t.Fatalf("row 1 corrupted: %v", r1)
	}
	grown := append(r1[:0], String("x2"), String("y2"), String("z2"))
	if !r2.Equal(Tuple{String("p"), String("q")}) {
		t.Fatalf("append through row 1 clobbered row 2: %v", r2)
	}
	_ = grown
	// Chunk rollover: rows larger than a chunk still come out whole.
	big := r.NewRow(10000)
	if len(big) != 10000 {
		t.Fatalf("big row length %d", len(big))
	}
}
