package rel

import (
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Null(), KindNull, "nil"},
		{String("x"), KindString, "x"},
		{String(""), KindString, ""},
		{Int(42), KindInt, "42"},
		{Int(-7), KindInt, "-7"},
		{Float(3.25), KindFloat, "3.25"},
		{Bool(true), KindBool, "true"},
		{Bool(false), KindBool, "false"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.String() != c.str {
			t.Errorf("kind %v: String() = %q, want %q", c.kind, c.v.String(), c.str)
		}
	}
	if !Null().IsNull() {
		t.Error("Null().IsNull() = false")
	}
	if String("nil").IsNull() {
		t.Error(`String("nil").IsNull() = true`)
	}
	if String("a").Str() != "a" || Int(5).IntVal() != 5 || Float(1.5).FloatVal() != 1.5 || !Bool(true).BoolVal() {
		t.Error("payload accessors returned wrong values")
	}
}

func TestValueEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Null(), Null(), true},
		{Null(), String(""), false},
		{String("a"), String("a"), true},
		{String("a"), String("b"), false},
		{Int(1), Int(1), true},
		{Int(1), Int(2), false},
		{Int(1), Float(1), false}, // Equal is strict about kinds
		{Float(2.5), Float(2.5), true},
		{Bool(true), Bool(true), true},
		{Bool(true), Bool(false), false},
		{String("1"), Int(1), false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Equal(c.a); got != c.want {
			t.Errorf("Equal not symmetric for %v, %v", c.a, c.b)
		}
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(2), Int(2), 0},
		{Float(1.5), Float(2.5), -1},
		{Int(1), Float(1.5), -1}, // numeric coercion
		{Float(1.5), Int(1), 1},
		{Int(3), Float(3.0), 0},
		{String("a"), String("b"), -1},
		{String("b"), String("b"), 0},
		{Null(), Null(), 0},
		{Null(), Int(0), -1}, // nulls sort first (below every kind)
		{Bool(false), Bool(true), -1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("%v.Compare(%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// TestValueKeyAgreesWithEqual is the property Key is designed for: equal keys
// iff Equal values.
func TestValueKeyAgreesWithEqual(t *testing.T) {
	vals := []Value{
		Null(), String(""), String("a"), String("nil"), String("1"),
		Int(0), Int(1), Int(-1), Float(0), Float(1), Float(-1.5),
		Bool(true), Bool(false),
	}
	for _, a := range vals {
		for _, b := range vals {
			if (a.Key() == b.Key()) != a.Equal(b) {
				t.Errorf("Key/Equal disagree for %v (%v) and %v (%v)", a, a.Kind(), b, b.Kind())
			}
		}
	}
}

func TestValueKeyQuick(t *testing.T) {
	f := func(a, b string) bool {
		return (String(a).Key() == String(b).Key()) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b int64) bool {
		return (Int(a).Key() == Int(b).Key()) == (a == b)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Value
	}{
		{"nil", Null()},
		{"NULL", Null()},
		{"true", Bool(true)},
		{"false", Bool(false)},
		{"42", Int(42)},
		{"-3", Int(-3)},
		{"3.5", Float(3.5)},
		{"-1.25", Float(-1.25)},
		{"IBM", String("IBM")},
		{"NY, NY", String("NY, NY")},
		{"", String("")},
		{"012", Int(12)}, // leading zeros parse as ints; paper IDs are inserted as strings deliberately
	}
	for _, c := range cases {
		if got := Parse(c.in); !got.Equal(c.want) {
			t.Errorf("Parse(%q) = %v (%v), want %v (%v)", c.in, got, got.Kind(), c.want, c.want.Kind())
		}
	}
}

func TestThetaEval(t *testing.T) {
	cases := []struct {
		theta Theta
		a, b  Value
		want  bool
	}{
		{ThetaEQ, Int(1), Int(1), true},
		{ThetaEQ, Int(1), Float(1), true}, // Compare coerces
		{ThetaEQ, String("a"), String("a"), true},
		{ThetaNE, Int(1), Int(2), true},
		{ThetaLT, Int(1), Int(2), true},
		{ThetaLE, Int(2), Int(2), true},
		{ThetaGT, Int(3), Int(2), true},
		{ThetaGE, Int(2), Int(2), true},
		{ThetaGE, Int(1), Int(2), false},
		// Null comparisons are always false.
		{ThetaEQ, Null(), Null(), false},
		{ThetaNE, Null(), Int(1), false},
		{ThetaLT, Null(), Int(1), false},
	}
	for _, c := range cases {
		if got := c.theta.Eval(c.a, c.b); got != c.want {
			t.Errorf("%v %v %v = %v, want %v", c.a, c.theta, c.b, got, c.want)
		}
	}
}

func TestParseTheta(t *testing.T) {
	for _, s := range []string{"=", "<>", "!=", "<", "<=", ">", ">="} {
		if _, err := ParseTheta(s); err != nil {
			t.Errorf("ParseTheta(%q) failed: %v", s, err)
		}
	}
	if _, err := ParseTheta("~"); err == nil {
		t.Error(`ParseTheta("~") should fail`)
	}
	if ThetaEQ.String() != "=" || ThetaNE.String() != "<>" {
		t.Error("Theta.String() wrong spelling")
	}
}

// TestThetaFlip checks a θ b == b θ.Flip() a over all kinds and thetas.
func TestThetaFlip(t *testing.T) {
	vals := []Value{Int(1), Int(2), Float(1.5), String("a"), String("b")}
	thetas := []Theta{ThetaEQ, ThetaNE, ThetaLT, ThetaLE, ThetaGT, ThetaGE}
	for _, th := range thetas {
		for _, a := range vals {
			for _, b := range vals {
				if th.Eval(a, b) != th.Flip().Eval(b, a) {
					t.Errorf("flip mismatch: %v %v %v", a, th, b)
				}
			}
		}
	}
}

func TestGobRoundTrip(t *testing.T) {
	vals := []Value{
		Null(), String(""), String("Banker's Trust"), Int(42), Int(-42),
		Float(3.99), Float(-1.7e9), Bool(true), Bool(false),
	}
	for _, v := range vals {
		data, err := v.GobEncode()
		if err != nil {
			t.Fatalf("encoding %v: %v", v, err)
		}
		var back Value
		if err := back.GobDecode(data); err != nil {
			t.Fatalf("decoding %v: %v", v, err)
		}
		if !back.Equal(v) {
			t.Errorf("round trip changed %v (%v) to %v (%v)", v, v.Kind(), back, back.Kind())
		}
	}
}

func TestGobDecodeErrors(t *testing.T) {
	var v Value
	if err := v.GobDecode(nil); err == nil {
		t.Error("decoding empty payload should fail")
	}
	if err := v.GobDecode([]byte{99}); err == nil {
		t.Error("decoding unknown kind should fail")
	}
	if err := v.GobDecode([]byte{byte(KindInt), 1, 2}); err == nil {
		t.Error("decoding truncated int should fail")
	}
	if err := v.GobDecode([]byte{byte(KindBool)}); err == nil {
		t.Error("decoding truncated bool should fail")
	}
}
