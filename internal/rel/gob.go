package rel

import (
	"encoding/binary"
	"fmt"
	"math"
)

// GobEncode implements gob.GobEncoder so that values can cross the LQP wire
// protocol (package wire) without exposing Value's representation.
func (v Value) GobEncode() ([]byte, error) {
	switch v.kind {
	case KindNull:
		return []byte{byte(KindNull)}, nil
	case KindString:
		return append([]byte{byte(KindString)}, v.str...), nil
	case KindInt:
		buf := make([]byte, 1+8)
		buf[0] = byte(KindInt)
		binary.BigEndian.PutUint64(buf[1:], uint64(v.num))
		return buf, nil
	case KindFloat:
		buf := make([]byte, 1+8)
		buf[0] = byte(KindFloat)
		binary.BigEndian.PutUint64(buf[1:], math.Float64bits(v.fnum))
		return buf, nil
	case KindBool:
		b := byte(0)
		if v.b {
			b = 1
		}
		return []byte{byte(KindBool), b}, nil
	default:
		return nil, fmt.Errorf("rel: cannot encode value of kind %d", v.kind)
	}
}

// GobDecode implements gob.GobDecoder.
func (v *Value) GobDecode(data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("rel: empty value encoding")
	}
	switch Kind(data[0]) {
	case KindNull:
		*v = Null()
	case KindString:
		*v = String(string(data[1:]))
	case KindInt:
		if len(data) != 9 {
			return fmt.Errorf("rel: bad int encoding length %d", len(data))
		}
		*v = Int(int64(binary.BigEndian.Uint64(data[1:])))
	case KindFloat:
		if len(data) != 9 {
			return fmt.Errorf("rel: bad float encoding length %d", len(data))
		}
		*v = Float(math.Float64frombits(binary.BigEndian.Uint64(data[1:])))
	case KindBool:
		if len(data) != 2 {
			return fmt.Errorf("rel: bad bool encoding length %d", len(data))
		}
		*v = Bool(data[1] == 1)
	default:
		return fmt.Errorf("rel: unknown value kind %d in encoding", data[0])
	}
	return nil
}
