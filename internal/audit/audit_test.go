package audit

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/identity"
	"repro/internal/paperdata"
)

func paperDBs(f *paperdata.Federation) map[string]*catalog.Database {
	return map[string]*catalog.Database{"AD": f.AD, "PD": f.PD, "CD": f.CD}
}

// TestAuditONAME verifies the §V footnote on the paper's own data: BUSINESS
// knows MIT and BP, which neither CORPORATION nor FIRM knows, and the three
// sources cover 12 distinct organizations (Table 6's cardinality).
func TestAuditONAME(t *testing.T) {
	f := paperdata.New()
	cov, err := AuditAttribute(f.Schema, "PORGANIZATION", "ONAME", identity.CaseFold{}, paperDBs(f))
	if err != nil {
		t.Fatal(err)
	}
	if cov.Total != 12 {
		t.Errorf("total distinct organizations = %d, want 12 (Table 6)", cov.Total)
	}
	if len(cov.Sources) != 3 {
		t.Fatalf("sources = %d", len(cov.Sources))
	}
	bus := cov.Sources[0]
	if bus.Local.Scheme != "BUSINESS" || bus.Count != 9 {
		t.Errorf("BUSINESS coverage = %+v", bus)
	}
	// BUSINESS misses Apple, AT&T, Banker's Trust.
	if len(bus.MissingFrom) != 3 {
		t.Errorf("BUSINESS missing = %v", bus.MissingFrom)
	}
	corp := cov.Sources[1]
	if corp.Count != 7 || len(corp.MissingFrom) != 5 {
		t.Errorf("CORPORATION coverage = %+v", corp)
	}
	firm := cov.Sources[2]
	if firm.Count != 10 || len(firm.MissingFrom) != 2 {
		t.Errorf("FIRM coverage = %+v", firm)
	}
	// MIT and BP are exactly the instances FIRM misses.
	missing := make(map[string]bool)
	for _, v := range firm.MissingFrom {
		missing[v.String()] = true
	}
	if !missing["MIT"] || !missing["BP"] {
		t.Errorf("FIRM should miss MIT and BP, got %v", firm.MissingFrom)
	}
}

// TestAuditCaseFoldMatters: with exact matching, "CitiCorp" (AD/CD) and
// "Citicorp" (PD) split into distinct instances and the total rises.
func TestAuditCaseFoldMatters(t *testing.T) {
	f := paperdata.New()
	cov, err := AuditAttribute(f.Schema, "PORGANIZATION", "ONAME", identity.Exact{}, paperDBs(f))
	if err != nil {
		t.Fatal(err)
	}
	if cov.Total != 13 {
		t.Errorf("exact-matching total = %d, want 13 (CitiCorp splits)", cov.Total)
	}
}

func TestAuditSchema(t *testing.T) {
	f := paperdata.New()
	covs, err := AuditSchema(f.Schema, identity.CaseFold{}, paperDBs(f))
	if err != nil {
		t.Fatal(err)
	}
	// Multi-source attributes: PORGANIZATION's ONAME, INDUSTRY and
	// HEADQUARTERS (CEO is single-source).
	if len(covs) != 3 {
		t.Fatalf("audited %d attributes, want 3: %+v", len(covs), covs)
	}
	for _, c := range covs {
		if c.Scheme != "PORGANIZATION" {
			t.Errorf("unexpected scheme %q", c.Scheme)
		}
	}
}

func TestAuditErrors(t *testing.T) {
	f := paperdata.New()
	if _, err := AuditAttribute(f.Schema, "NOPE", "X", nil, paperDBs(f)); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := AuditAttribute(f.Schema, "PORGANIZATION", "ONAME", nil, map[string]*catalog.Database{}); err == nil {
		t.Error("missing catalog accepted")
	}
}

func TestCoverageString(t *testing.T) {
	f := paperdata.New()
	cov, err := AuditAttribute(f.Schema, "PORGANIZATION", "ONAME", identity.CaseFold{}, paperDBs(f))
	if err != nil {
		t.Fatal(err)
	}
	s := cov.String()
	if !strings.Contains(s, "PORGANIZATION.ONAME: 12 distinct instances") {
		t.Errorf("render = %q", s)
	}
	if !strings.Contains(s, "(CD, FIRM, FNAME)") || !strings.Contains(s, "missing") {
		t.Errorf("render = %q", s)
	}
}
