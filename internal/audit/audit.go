// Package audit implements diagnostics for the cardinality inconsistency
// problem the paper identifies as "inherent in heterogeneous database
// systems" (§V, footnote 13): referential integrity is not enforceable over
// pre-existing, independently administered databases, so the local relations
// mapped to one polygen attribute cover different — overlapping but unequal —
// sets of instances.
//
// Coverage scans the local relations feeding one polygen attribute and
// reports, per local database, which instances it knows that others do not.
// The paper's own federation exhibits the problem: MIT and BP appear in the
// Alumni Database's BUSINESS relation but in neither CORPORATION nor FIRM,
// which is why Table 6 carries nil CEOs for them.
package audit

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/identity"
	"repro/internal/rel"
)

// Coverage describes how the local relations of one polygen attribute cover
// the union of their instances.
type Coverage struct {
	// Scheme and Attr identify the polygen attribute audited.
	Scheme string
	Attr   string
	// Total is the number of distinct instances across all sources.
	Total int
	// Sources describes each local relation's coverage, ordered as in the
	// attribute's mapping.
	Sources []SourceCoverage
	// MissingEverywhere is always empty for the audited attribute itself
	// (every instance has at least one source) and exists for symmetry with
	// future multi-attribute audits.
	MissingEverywhere []rel.Value
}

// SourceCoverage is one local relation's view of the instance set.
type SourceCoverage struct {
	Local core.LocalAttr
	// Count is the number of distinct instances this source knows.
	Count int
	// MissingFrom lists instances known to some other source but not this
	// one (the cardinality inconsistency), in first-seen order.
	MissingFrom []rel.Value
}

// String renders the coverage report.
func (c Coverage) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s.%s: %d distinct instances\n", c.Scheme, c.Attr, c.Total)
	for _, s := range c.Sources {
		fmt.Fprintf(&b, "  %s: %d known", s.Local, s.Count)
		if len(s.MissingFrom) > 0 {
			vals := make([]string, len(s.MissingFrom))
			for i, v := range s.MissingFrom {
				vals[i] = v.String()
			}
			fmt.Fprintf(&b, ", missing: %s", strings.Join(vals, ", "))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// AuditAttribute checks one polygen attribute's mapping against the live
// local databases. res canonicalizes instances (nil = exact); dbs maps
// database names to their catalogs.
func AuditAttribute(schema *core.Schema, scheme, attr string, res identity.Resolver, dbs map[string]*catalog.Database) (Coverage, error) {
	if res == nil {
		res = identity.Exact{}
	}
	pa, err := schema.ResolveAttr(scheme, attr)
	if err != nil {
		return Coverage{}, err
	}
	cov := Coverage{Scheme: scheme, Attr: attr}

	type sourceSeen struct {
		local core.LocalAttr
		seen  map[string]bool
	}
	var sources []sourceSeen
	union := make(map[string]rel.Value)
	var order []string
	for _, la := range pa.Mapping {
		db, ok := dbs[la.DB]
		if !ok {
			return Coverage{}, fmt.Errorf("audit: no catalog for database %q", la.DB)
		}
		r, err := db.Snapshot(la.Scheme)
		if err != nil {
			return Coverage{}, err
		}
		ci, err := r.Col(la.Attr)
		if err != nil {
			return Coverage{}, err
		}
		// Compare in the polygen domain: apply the schema's domain mapping
		// (e.g. FIRM.HQ "Cambridge, MA" → "MA") before canonicalizing.
		mapFn := schema.DomainMap.Lookup(la.DB, la.Scheme, la.Attr)
		s := sourceSeen{local: la, seen: make(map[string]bool)}
		for _, t := range r.Tuples {
			v := mapFn(t[ci])
			if v.IsNull() {
				continue
			}
			k := res.Canonical(v)
			if !s.seen[k] {
				s.seen[k] = true
			}
			if _, dup := union[k]; !dup {
				union[k] = v
				order = append(order, k)
			}
		}
		sources = append(sources, s)
	}
	cov.Total = len(union)
	for _, s := range sources {
		sc := SourceCoverage{Local: s.local, Count: len(s.seen)}
		for _, k := range order {
			if !s.seen[k] {
				sc.MissingFrom = append(sc.MissingFrom, union[k])
			}
		}
		cov.Sources = append(cov.Sources, sc)
	}
	return cov, nil
}

// AuditSchema audits every multi-source attribute of every scheme — the
// attributes where cardinality inconsistencies can exist — and returns the
// reports sorted by scheme then attribute.
func AuditSchema(schema *core.Schema, res identity.Resolver, dbs map[string]*catalog.Database) ([]Coverage, error) {
	var out []Coverage
	for _, name := range schema.SchemeNames() {
		scheme, _ := schema.Scheme(name)
		for _, pa := range scheme.Attrs {
			if len(pa.Mapping) < 2 {
				continue
			}
			cov, err := AuditAttribute(schema, name, pa.Name, res, dbs)
			if err != nil {
				return nil, err
			}
			out = append(out, cov)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Scheme != out[j].Scheme {
			return out[i].Scheme < out[j].Scheme
		}
		return out[i].Attr < out[j].Attr
	})
	return out, nil
}
