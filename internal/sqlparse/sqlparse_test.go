package sqlparse

import (
	"strings"
	"testing"

	"repro/internal/rel"
)

func TestParseSimpleQuery(t *testing.T) {
	q, err := Parse(`SELECT CEO FROM PORGANIZATION WHERE INDUSTRY = "Banking"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 1 || q.Select[0] != "CEO" || q.Star {
		t.Errorf("select = %v", q.Select)
	}
	if len(q.From) != 1 || q.From[0] != "PORGANIZATION" {
		t.Errorf("from = %v", q.From)
	}
	if len(q.Where) != 1 {
		t.Fatalf("where = %v", q.Where)
	}
	c := q.Where[0]
	if c.Kind != CondCompare || c.X != "INDUSTRY" || !c.IsConst || !c.YConst.Equal(rel.String("Banking")) {
		t.Errorf("cond = %+v", c)
	}
}

func TestParseStar(t *testing.T) {
	q, err := Parse(`SELECT * FROM PALUMNUS`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Star || len(q.Where) != 0 {
		t.Errorf("query = %+v", q)
	}
}

func TestParseMultipleFromAndConds(t *testing.T) {
	q, err := Parse(`SELECT CEO FROM PORGANIZATION, PALUMNUS WHERE CEO = ANAME AND DEGREE = "MBA"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.From) != 2 || len(q.Where) != 2 {
		t.Fatalf("query = %+v", q)
	}
	if q.Where[0].YAttr != "ANAME" || q.Where[0].IsConst {
		t.Errorf("first cond = %+v", q.Where[0])
	}
}

func TestParseNestedIN(t *testing.T) {
	q, err := Parse(`SELECT ONAME, CEO FROM PORGANIZATION, PALUMNUS WHERE CEO = ANAME AND ONAME IN
		(SELECT ONAME FROM PCAREER WHERE AID# IN
		(SELECT AID# FROM PALUMNUS WHERE DEGREE = "MBA"))`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where) != 2 {
		t.Fatalf("where = %v", q.Where)
	}
	in := q.Where[1]
	if in.Kind != CondIn || in.X != "ONAME" {
		t.Fatalf("IN cond = %+v", in)
	}
	mid := in.Sub
	if mid.From[0] != "PCAREER" || mid.Where[0].Kind != CondIn {
		t.Fatalf("middle subquery = %+v", mid)
	}
	inner := mid.Where[0].Sub
	if inner.From[0] != "PALUMNUS" || inner.Where[0].YConst.Str() != "MBA" {
		t.Fatalf("inner subquery = %+v", inner)
	}
}

func TestParseNumericLiterals(t *testing.T) {
	q, err := Parse(`SELECT SNAME FROM PSTUDENT WHERE GPA >= 3.5 AND SID# <> 12`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Where[0].YConst.Equal(rel.Float(3.5)) {
		t.Errorf("float literal = %v", q.Where[0].YConst)
	}
	if !q.Where[1].YConst.Equal(rel.Int(12)) {
		t.Errorf("int literal = %v", q.Where[1].YConst)
	}
	if q.Where[1].Theta != rel.ThetaNE {
		t.Errorf("theta = %v", q.Where[1].Theta)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	q, err := Parse(`select CEO from PORGANIZATION where CEO = "x"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 1 {
		t.Errorf("query = %+v", q)
	}
}

func TestParseSingleQuotedLiterals(t *testing.T) {
	q, err := Parse(`SELECT CEO FROM PORGANIZATION WHERE ONAME = 'Langley Castle'`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Where[0].YConst.Str() != "Langley Castle" {
		t.Errorf("literal = %v", q.Where[0].YConst)
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	inputs := []string{
		`SELECT CEO FROM PORGANIZATION WHERE INDUSTRY = "Banking"`,
		`SELECT * FROM PALUMNUS`,
		`SELECT ONAME, CEO FROM PORGANIZATION, PALUMNUS WHERE CEO = ANAME AND ONAME IN (SELECT ONAME FROM PCAREER WHERE AID# IN (SELECT AID# FROM PALUMNUS WHERE DEGREE = "MBA"))`,
		`SELECT SNAME FROM PSTUDENT WHERE GPA >= 3.5`,
	}
	for _, in := range inputs {
		q1, err := Parse(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		s1 := q1.String()
		q2, err := Parse(s1)
		if err != nil {
			t.Fatalf("re-parsing %q: %v", s1, err)
		}
		if s2 := q2.String(); s1 != s2 {
			t.Errorf("round trip changed rendering:\n  %s\n  %s", s1, s2)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM T",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM T WHERE",
		"SELECT a FROM T WHERE x",
		"SELECT a FROM T WHERE x =",
		"SELECT a FROM T WHERE x IN",
		"SELECT a FROM T WHERE x IN (SELECT a FROM U",
		"SELECT a FROM T WHERE x IN (SELECT a, b FROM U)", // multi-attr IN
		"SELECT a FROM T WHERE x IN (SELECT * FROM U)",    // star IN
		"SELECT a FROM T extra",
		`SELECT a FROM T WHERE x = "unterminated`,
		"SELECT a, FROM T",
		"SELECT a FROM T WHERE x ! y",
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic")
		}
	}()
	MustParse("SELECT")
}

func TestCondString(t *testing.T) {
	c := Cond{Kind: CondCompare, X: "A", Theta: rel.ThetaLT, YConst: rel.Int(3), IsConst: true}
	if got := c.String(); got != "A < 3" {
		t.Errorf("cond string = %q", got)
	}
	c2 := Cond{Kind: CondCompare, X: "A", Theta: rel.ThetaEQ, YAttr: "B"}
	if got := c2.String(); got != "A = B" {
		t.Errorf("cond string = %q", got)
	}
	c3 := Cond{Kind: CondIn, X: "A", Sub: MustParse("SELECT B FROM T")}
	if got := c3.String(); !strings.Contains(got, "A IN (SELECT B FROM T)") {
		t.Errorf("cond string = %q", got)
	}
}

func TestIdentifiersWithHashAndDot(t *testing.T) {
	q, err := Parse(`SELECT AID# FROM PALUMNUS WHERE AID# = "012"`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Select[0] != "AID#" {
		t.Errorf("select = %v", q.Select)
	}
}

// TestParseStringEscapes mirrors the algebra lexer's escape handling.
func TestParseStringEscapes(t *testing.T) {
	q, err := Parse(`SELECT A FROM B WHERE C = "x\"y"`)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Where[0].YConst.Str(); got != `x"y` {
		t.Errorf("escaped literal = %q", got)
	}
	if _, err := Parse(`SELECT A FROM B WHERE C = "bad \q"`); err == nil {
		t.Error("invalid escape accepted")
	}
}
