package sqlparse

import (
	"testing"
)

// FuzzParse checks that the SQL parser never panics and that accepted
// queries have a stable rendering under re-parsing.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`SELECT CEO FROM PORGANIZATION WHERE INDUSTRY = "Banking"`,
		`SELECT * FROM PALUMNUS`,
		`SELECT ONAME, CEO FROM PORGANIZATION, PALUMNUS WHERE CEO = ANAME AND ONAME IN (SELECT ONAME FROM PCAREER WHERE AID# IN (SELECT AID# FROM PALUMNUS WHERE DEGREE = "MBA"))`,
		`SELECT A FROM B WHERE C >= 3.99 AND D <> 'x'`,
		`select a from b where c in (select d from e)`,
		`SELECT FROM`,
		``,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return
		}
		s1 := q.String()
		q2, err := Parse(s1)
		if err != nil {
			t.Fatalf("accepted %q but rejected its rendering %q: %v", input, s1, err)
		}
		if s2 := q2.String(); s1 != s2 {
			t.Fatalf("rendering unstable: %q -> %q", s1, s2)
		}
	})
}
