// Package sqlparse implements the SQL front end for polygen queries: the
// subset of SQL the paper uses to state polygen queries (§I, §III) —
//
//	SELECT attr, ... FROM scheme, ... WHERE cond AND cond ...
//
// where a condition is attr θ attr, attr θ constant, or attr IN (subquery).
// The parser produces an AST; package translate compiles the AST into a
// polygen algebraic expression against a polygen schema.
package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/rel"
)

// Query is one (sub)query block.
type Query struct {
	// Select lists the projected attributes; Star reports SELECT *.
	Select []string
	Star   bool
	// From lists the polygen scheme names.
	From []string
	// Where is the conjunction of conditions (possibly empty).
	Where []Cond
}

// CondKind classifies a WHERE condition.
type CondKind uint8

const (
	// CondCompare is attr θ (attr | constant).
	CondCompare CondKind = iota
	// CondIn is attr IN (subquery).
	CondIn
)

// Cond is one conjunct of a WHERE clause.
type Cond struct {
	Kind CondKind
	// X is the left attribute.
	X string
	// Theta is the comparison for CondCompare.
	Theta rel.Theta
	// YAttr / YConst carry the right side for CondCompare; IsConst selects.
	YAttr   string
	YConst  rel.Value
	IsConst bool
	// Sub is the subquery for CondIn.
	Sub *Query
}

// String renders the query in SQL.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if q.Star {
		b.WriteString("*")
	} else {
		b.WriteString(strings.Join(q.Select, ", "))
	}
	b.WriteString(" FROM ")
	b.WriteString(strings.Join(q.From, ", "))
	if len(q.Where) > 0 {
		b.WriteString(" WHERE ")
		parts := make([]string, len(q.Where))
		for i, c := range q.Where {
			parts[i] = c.String()
		}
		b.WriteString(strings.Join(parts, " AND "))
	}
	return b.String()
}

// String renders the condition in SQL.
func (c Cond) String() string {
	switch c.Kind {
	case CondIn:
		return fmt.Sprintf("%s IN (%s)", c.X, c.Sub)
	default:
		if c.IsConst {
			if c.YConst.Kind() == rel.KindString {
				return fmt.Sprintf("%s %s %q", c.X, c.Theta, c.YConst.Str())
			}
			return fmt.Sprintf("%s %s %s", c.X, c.Theta, c.YConst)
		}
		return fmt.Sprintf("%s %s %s", c.X, c.Theta, c.YAttr)
	}
}

// Parse parses one SQL polygen query.
func Parse(input string) (*Query, error) {
	toks, err := lexSQL(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != sEOF {
		return nil, fmt.Errorf("sqlparse: trailing input at %s", p.peek())
	}
	return q, nil
}

// MustParse is Parse for statically-known queries.
func MustParse(input string) *Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

type sKind uint8

const (
	sEOF sKind = iota
	sIdent
	sString
	sNumber
	sLParen
	sRParen
	sComma
	sOp
	sStar
)

type sTok struct {
	kind sKind
	text string
	pos  int
}

func (t sTok) String() string {
	if t.kind == sEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

func lexSQL(input string) ([]sTok, error) {
	var toks []sTok
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, sTok{sLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, sTok{sRParen, ")", i})
			i++
		case c == ',':
			toks = append(toks, sTok{sComma, ",", i})
			i++
		case c == '*':
			toks = append(toks, sTok{sStar, "*", i})
			i++
		case c == '=':
			toks = append(toks, sTok{sOp, "=", i})
			i++
		case c == '<':
			switch {
			case strings.HasPrefix(input[i:], "<>"):
				toks = append(toks, sTok{sOp, "<>", i})
				i += 2
			case strings.HasPrefix(input[i:], "<="):
				toks = append(toks, sTok{sOp, "<=", i})
				i += 2
			default:
				toks = append(toks, sTok{sOp, "<", i})
				i++
			}
		case c == '>':
			if strings.HasPrefix(input[i:], ">=") {
				toks = append(toks, sTok{sOp, ">=", i})
				i += 2
			} else {
				toks = append(toks, sTok{sOp, ">", i})
				i++
			}
		case c == '"':
			// Double-quoted strings support Go escape sequences so that the
			// renderer's %q output re-parses to the same value.
			j := i + 1
			for j < len(input) && input[j] != '"' {
				if input[j] == '\\' {
					j++
				}
				j++
			}
			if j >= len(input) {
				return nil, fmt.Errorf("sqlparse: unterminated string at offset %d", i)
			}
			text, err := strconv.Unquote(input[i : j+1])
			if err != nil {
				return nil, fmt.Errorf("sqlparse: bad string literal at offset %d: %v", i, err)
			}
			toks = append(toks, sTok{sString, text, i})
			i = j + 1
		case c == '\'':
			j := i + 1
			for j < len(input) && input[j] != '\'' {
				j++
			}
			if j >= len(input) {
				return nil, fmt.Errorf("sqlparse: unterminated string at offset %d", i)
			}
			toks = append(toks, sTok{sString, input[i+1 : j], i})
			i = j + 1
		case c >= '0' && c <= '9' || (c == '-' && i+1 < len(input) && input[i+1] >= '0' && input[i+1] <= '9'):
			j := i + 1
			for j < len(input) && (input[j] >= '0' && input[j] <= '9' || input[j] == '.') {
				j++
			}
			toks = append(toks, sTok{sNumber, input[i:j], i})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i + 1
			for j < len(input) {
				r := rune(input[j])
				// '$' (not a start character) admits the V$ virtual-table
				// names, mirroring the algebra lexer.
				if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '#' || r == '.' || r == '$' {
					j++
					continue
				}
				break
			}
			toks = append(toks, sTok{sIdent, input[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("sqlparse: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, sTok{sEOF, "", len(input)})
	return toks, nil
}

type parser struct {
	toks []sTok
	i    int
}

func (p *parser) peek() sTok { return p.toks[p.i] }
func (p *parser) next() sTok { t := p.toks[p.i]; p.i++; return t }

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != sIdent || !strings.EqualFold(t.text, kw) {
		return fmt.Errorf("sqlparse: expected %s, found %s", kw, t)
	}
	return nil
}

func (p *parser) isKeyword(kw string) bool {
	t := p.peek()
	return t.kind == sIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q := &Query{}
	if p.peek().kind == sStar {
		p.next()
		q.Star = true
	} else {
		for {
			t := p.next()
			if t.kind != sIdent {
				return nil, fmt.Errorf("sqlparse: expected an attribute in SELECT, found %s", t)
			}
			q.Select = append(q.Select, t.text)
			if p.peek().kind != sComma {
				break
			}
			p.next()
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		t := p.next()
		if t.kind != sIdent {
			return nil, fmt.Errorf("sqlparse: expected a relation in FROM, found %s", t)
		}
		q.From = append(q.From, t.text)
		if p.peek().kind != sComma {
			break
		}
		p.next()
	}
	if p.isKeyword("WHERE") {
		p.next()
		for {
			c, err := p.parseCond()
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, c)
			if !p.isKeyword("AND") {
				break
			}
			p.next()
		}
	}
	return q, nil
}

func (p *parser) parseCond() (Cond, error) {
	x := p.next()
	if x.kind != sIdent {
		return Cond{}, fmt.Errorf("sqlparse: expected an attribute in WHERE, found %s", x)
	}
	if p.isKeyword("IN") {
		p.next()
		if t := p.next(); t.kind != sLParen {
			return Cond{}, fmt.Errorf("sqlparse: expected '(' after IN, found %s", t)
		}
		sub, err := p.parseQuery()
		if err != nil {
			return Cond{}, err
		}
		if t := p.next(); t.kind != sRParen {
			return Cond{}, fmt.Errorf("sqlparse: expected ')' closing subquery, found %s", t)
		}
		if sub.Star || len(sub.Select) != 1 {
			return Cond{}, fmt.Errorf("sqlparse: IN subquery must select exactly one attribute")
		}
		return Cond{Kind: CondIn, X: x.text, Sub: sub}, nil
	}
	op := p.next()
	if op.kind != sOp {
		return Cond{}, fmt.Errorf("sqlparse: expected a comparison after %q, found %s", x.text, op)
	}
	theta, err := rel.ParseTheta(op.text)
	if err != nil {
		return Cond{}, err
	}
	rhs := p.next()
	switch rhs.kind {
	case sIdent:
		return Cond{Kind: CondCompare, X: x.text, Theta: theta, YAttr: rhs.text}, nil
	case sString:
		return Cond{Kind: CondCompare, X: x.text, Theta: theta, YConst: rel.String(rhs.text), IsConst: true}, nil
	case sNumber:
		var v rel.Value
		if i64, err := strconv.ParseInt(rhs.text, 10, 64); err == nil {
			v = rel.Int(i64)
		} else {
			f, err := strconv.ParseFloat(rhs.text, 64)
			if err != nil {
				return Cond{}, fmt.Errorf("sqlparse: bad numeric literal %q", rhs.text)
			}
			v = rel.Float(f)
		}
		return Cond{Kind: CondCompare, X: x.text, Theta: theta, YConst: v, IsConst: true}, nil
	default:
		return Cond{}, fmt.Errorf("sqlparse: expected an attribute or literal, found %s", rhs)
	}
}
