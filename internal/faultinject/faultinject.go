// Package faultinject is the chaos harness of the federation: deterministic,
// seeded fault wrappers that make an LQP (Flaky) or a network connection
// (FlakyConn) misbehave on a fixed cadence — injected errors, latency
// spikes, hangs, and mid-stream cuts. The fault-tolerance layer
// (internal/federation) is *proven* against these wrappers: the property
// suites assert that under injected faults, every answer that does arrive is
// cell-for-cell and tag-identical to the fault-free run.
//
// Determinism is the point. Each injection site draws from an atomic
// counter whose phase is rotated by the profile's Seed, so a given
// (profile, seed) pair injects the same multiset of faults on every run —
// a failing chaos test replays. There is no wall-clock or math/rand state
// anywhere in the decision path.
//
// cmd/lqpd wires Flaky behind its -chaos-* flags (serving a deliberately
// unreliable replica over the real wire protocol), and wire.Server.ConnHook
// accepts a FlakyConn wrapper for transport-level cuts that poison gob
// streams mid-exchange.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/lqp"
	"repro/internal/rel"
)

// Profile fixes a Flaky wrapper's fault schedule. Every cadence field is
// "every Nth call, counted from the wrapper's birth, phase-rotated by
// Seed": 0 disables that fault, 1 means every call — a replica with
// ErrEvery=1 is dead, with HangEvery=1 it is hung.
type Profile struct {
	// Seed rotates the phase of every cadence counter, so different seeds
	// fault different calls while keeping each run reproducible.
	Seed int64

	// ErrEvery: every Nth operation (Execute/Open/plan/Relations/Stats)
	// fails immediately with an injected *Error.
	ErrEvery int
	// SlowEvery: every Nth operation sleeps Latency before proceeding
	// normally — a latency spike, not a failure.
	SlowEvery int
	// Latency is the injected spike duration for SlowEvery.
	Latency time.Duration
	// HangEvery: every Nth operation blocks for Hang and then fails — a
	// stalled peer, detectable only by the caller's deadline.
	HangEvery int
	// Hang is the stall duration for HangEvery. Choose it well above the
	// caller's per-call deadline: a hang that returns before the deadline
	// is just a slow call.
	Hang time.Duration
	// CutEvery: every Nth opened stream (Open/OpenPlan) dies with an
	// injected error after CutAfter batches have been delivered.
	CutEvery int
	// CutAfter is how many batches a cut stream yields before dying
	// (0 = dies on the first Next).
	CutAfter int
	// PingErrEvery: every Nth health probe fails. Independent of ErrEvery,
	// except that a dead (ErrEvery=1) or hung (HangEvery=1) replica always
	// fails its probes too — a killed process answers nothing, probes
	// included.
	PingErrEvery int
}

// Error is one injected fault. errors.As against *Error distinguishes
// injected chaos from real failures in assertions.
type Error struct {
	// Kind is the fault class: "error", "hang", "cut" or "ping".
	Kind string
	// Target names the wrapped LQP or connection.
	Target string
	// N is the 1-based call count at which the fault fired.
	N int64
}

func (e *Error) Error() string {
	return fmt.Sprintf("faultinject: injected %s fault on %s (call %d)", e.Kind, e.Target, e.N)
}

// IsInjected reports whether err is (or wraps) an injected fault.
func IsInjected(err error) bool {
	var fe *Error
	return errors.As(err, &fe)
}

// hit reports whether the n-th event falls on the cadence, with the phase
// rotated by seed.
func hit(n int64, every int, seed int64) bool {
	if every <= 0 {
		return false
	}
	e := int64(every)
	return (n+seed%e+e)%e == 0
}

// Flaky wraps an LQP with the profile's fault schedule. It implements every
// optional capability (streaming, plan pushdown, statistics) by forwarding
// through the lqp fallback helpers, plus the Ping health probe, so it can
// stand in for a replica anywhere — behind wire.NewServerFor in a chaotic
// lqpd, or directly inside an in-process federation.
//
// Counters of fired faults are exported (Injected) so tests can assert the
// chaos actually happened — a property suite that never injected anything
// proves nothing.
type Flaky struct {
	inner lqp.LQP
	p     Profile

	ops     atomic.Int64
	streams atomic.Int64
	pings   atomic.Int64

	errs  atomic.Int64
	hangs atomic.Int64
	slows atomic.Int64
	cuts  atomic.Int64
}

// New wraps inner with profile p.
func New(inner lqp.LQP, p Profile) *Flaky {
	return &Flaky{inner: inner, p: p}
}

// Name implements lqp.LQP.
func (f *Flaky) Name() string { return f.inner.Name() }

// Inner returns the wrapped LQP.
func (f *Flaky) Inner() lqp.LQP { return f.inner }

// Injected reports how many faults of each class have fired.
func (f *Flaky) Injected() (errs, hangs, slows, cuts int64) {
	return f.errs.Load(), f.hangs.Load(), f.slows.Load(), f.cuts.Load()
}

// before runs one operation's fault schedule: hang, error or latency spike,
// in that precedence. A non-nil error aborts the operation.
func (f *Flaky) before() error {
	n := f.ops.Add(1)
	switch {
	case hit(n, f.p.HangEvery, f.p.Seed):
		f.hangs.Add(1)
		time.Sleep(f.p.Hang)
		return &Error{Kind: "hang", Target: f.Name(), N: n}
	case hit(n, f.p.ErrEvery, f.p.Seed):
		f.errs.Add(1)
		return &Error{Kind: "error", Target: f.Name(), N: n}
	case hit(n, f.p.SlowEvery, f.p.Seed):
		f.slows.Add(1)
		time.Sleep(f.p.Latency)
	}
	return nil
}

// Relations implements lqp.LQP.
func (f *Flaky) Relations() ([]string, error) {
	if err := f.before(); err != nil {
		return nil, err
	}
	return f.inner.Relations()
}

// Execute implements lqp.LQP.
func (f *Flaky) Execute(op lqp.Op) (*rel.Relation, error) {
	if err := f.before(); err != nil {
		return nil, err
	}
	return f.inner.Execute(op)
}

// ExecutePlan implements lqp.PlanRunner (falling back for inner LQPs
// without the capability).
func (f *Flaky) ExecutePlan(p lqp.Plan) (*rel.Relation, error) {
	if err := f.before(); err != nil {
		return nil, err
	}
	return lqp.ExecutePlanOn(f.inner, p)
}

// Stats implements lqp.StatsProvider; inner LQPs without the capability
// report no statistics.
func (f *Flaky) Stats() ([]lqp.RelationStats, error) {
	if err := f.before(); err != nil {
		return nil, err
	}
	st, _, err := lqp.StatsOf(f.inner)
	return st, err
}

// Open implements lqp.Streamer: the operation's fault schedule runs at open
// time, and on the cut cadence the returned cursor dies mid-stream after
// CutAfter batches.
func (f *Flaky) Open(op lqp.Op) (rel.Cursor, error) {
	if err := f.before(); err != nil {
		return nil, err
	}
	cur, err := lqp.OpenLQP(f.inner, op)
	return f.maybeCut(cur, err)
}

// OpenPlan implements lqp.PlanStreamer, with the same cut behavior as Open.
func (f *Flaky) OpenPlan(p lqp.Plan) (rel.Cursor, error) {
	if err := f.before(); err != nil {
		return nil, err
	}
	cur, err := lqp.OpenPlanOn(f.inner, p)
	return f.maybeCut(cur, err)
}

func (f *Flaky) maybeCut(cur rel.Cursor, err error) (rel.Cursor, error) {
	if err != nil {
		return nil, err
	}
	n := f.streams.Add(1)
	if !hit(n, f.p.CutEvery, f.p.Seed) {
		return cur, nil
	}
	return &cutCursor{in: cur, f: f, left: f.p.CutAfter, n: n}, nil
}

// Ping answers the health probe: a dead or hung replica never answers, and
// the ping cadence can fail probes independently. The deadline d is honored
// for the hung case (the probe blocks no longer than the caller allows).
func (f *Flaky) Ping(d time.Duration) error {
	n := f.pings.Add(1)
	switch {
	case f.p.HangEvery == 1:
		stall := f.p.Hang
		if d > 0 && d < stall {
			stall = d
		}
		time.Sleep(stall)
		return &Error{Kind: "ping", Target: f.Name(), N: n}
	case f.p.ErrEvery == 1, hit(n, f.p.PingErrEvery, f.p.Seed):
		return &Error{Kind: "ping", Target: f.Name(), N: n}
	}
	if pinger, ok := f.inner.(interface{ Ping(time.Duration) error }); ok {
		return pinger.Ping(d)
	}
	return nil
}

// cutCursor delivers `left` batches then dies with an injected error —
// the mid-stream cut every resilient consumer must survive.
type cutCursor struct {
	in   rel.Cursor
	f    *Flaky
	left int
	n    int64
}

func (c *cutCursor) Schema() *rel.Schema { return c.in.Schema() }

func (c *cutCursor) Next() ([]rel.Tuple, error) {
	if c.left <= 0 {
		c.f.cuts.Add(1)
		c.in.Close()
		return nil, &Error{Kind: "cut", Target: c.f.Name(), N: c.n}
	}
	batch, err := c.in.Next()
	if err != nil {
		return nil, err // real EOF or error: pass through
	}
	c.left--
	return batch, nil
}

func (c *cutCursor) Close() error { return c.in.Close() }

// ConnProfile fixes a FlakyConn's transport faults.
type ConnProfile struct {
	// CutAfterReads / CutAfterWrites kill the connection after that many
	// successful Read/Write calls (0 = never). A killed connection returns
	// io.ErrClosedPipe-shaped errors, exactly what a reset peer produces.
	CutAfterReads  int
	CutAfterWrites int
	// ReadDelay / WriteDelay stall each Read/Write — transport latency.
	ReadDelay  time.Duration
	WriteDelay time.Duration
}

// FlakyConn wraps a net.Conn with deterministic transport faults. Wire it
// into wire.Server.ConnHook to cut server-side connections mid-exchange, or
// wrap a dialed conn to poison a client.
type FlakyConn struct {
	net.Conn
	p      ConnProfile
	reads  atomic.Int64
	writes atomic.Int64
	cut    atomic.Bool
}

// WrapConn wraps conn with profile p.
func WrapConn(conn net.Conn, p ConnProfile) *FlakyConn {
	return &FlakyConn{Conn: conn, p: p}
}

// Cut reports whether the connection has been killed by the profile.
func (c *FlakyConn) Cut() bool { return c.cut.Load() }

func (c *FlakyConn) kill() error {
	c.cut.Store(true)
	c.Conn.Close()
	return io.ErrClosedPipe
}

func (c *FlakyConn) Read(b []byte) (int, error) {
	if c.cut.Load() {
		return 0, io.ErrClosedPipe
	}
	if c.p.ReadDelay > 0 {
		time.Sleep(c.p.ReadDelay)
	}
	if n := c.reads.Add(1); c.p.CutAfterReads > 0 && n > int64(c.p.CutAfterReads) {
		return 0, c.kill()
	}
	return c.Conn.Read(b)
}

func (c *FlakyConn) Write(b []byte) (int, error) {
	if c.cut.Load() {
		return 0, io.ErrClosedPipe
	}
	if c.p.WriteDelay > 0 {
		time.Sleep(c.p.WriteDelay)
	}
	if n := c.writes.Add(1); c.p.CutAfterWrites > 0 && n > int64(c.p.CutAfterWrites) {
		return 0, c.kill()
	}
	return c.Conn.Write(b)
}

var (
	_ lqp.LQP           = (*Flaky)(nil)
	_ lqp.Streamer      = (*Flaky)(nil)
	_ lqp.PlanRunner    = (*Flaky)(nil)
	_ lqp.PlanStreamer  = (*Flaky)(nil)
	_ lqp.StatsProvider = (*Flaky)(nil)
	_ net.Conn          = (*FlakyConn)(nil)
)
