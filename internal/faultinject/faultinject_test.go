package faultinject

import (
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/lqp"
	"repro/internal/rel"
)

func testDB(rows int) *catalog.Database {
	db := catalog.NewDatabase("AD")
	db.MustCreate("ALUMNUS", rel.SchemaOf("AID#", "ANAME"), "AID#")
	tuples := make([]rel.Tuple, 0, rows)
	for i := 0; i < rows; i++ {
		tuples = append(tuples, rel.Tuple{
			rel.String(fmt.Sprintf("A%05d", i)),
			rel.String(fmt.Sprintf("name-%d", i)),
		})
	}
	if err := db.Insert("ALUMNUS", tuples...); err != nil {
		panic(err)
	}
	return db
}

func TestCadenceDeterminism(t *testing.T) {
	// The same (profile, seed) pair must inject the same faults on the same
	// calls — a failing chaos run replays.
	run := func(seed int64) []bool {
		f := New(lqp.NewLocal(testDB(4)), Profile{Seed: seed, ErrEvery: 3})
		outcomes := make([]bool, 12)
		for i := range outcomes {
			_, err := f.Execute(lqp.Retrieve("ALUMNUS"))
			outcomes[i] = err != nil
		}
		return outcomes
	}
	a, b := run(42), run(42)
	faults := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: run A faulted=%v, run B faulted=%v — not deterministic", i, a[i], b[i])
		}
		if a[i] {
			faults++
		}
	}
	if faults != 4 {
		t.Errorf("ErrEvery=3 over 12 calls injected %d faults, want 4", faults)
	}
	// A different seed shifts the phase but keeps the rate.
	c := run(43)
	cf := 0
	for _, hit := range c {
		if hit {
			cf++
		}
	}
	if cf != 4 {
		t.Errorf("seed 43 injected %d faults, want 4", cf)
	}
}

func TestInjectedErrorsAreTyped(t *testing.T) {
	f := New(lqp.NewLocal(testDB(2)), Profile{ErrEvery: 1})
	_, err := f.Execute(lqp.Retrieve("ALUMNUS"))
	if err == nil || !IsInjected(err) {
		t.Fatalf("err = %v, want injected", err)
	}
	if IsInjected(io.EOF) {
		t.Errorf("io.EOF misdetected as injected")
	}
	errs, _, _, _ := f.Injected()
	if errs != 1 {
		t.Errorf("errs = %d", errs)
	}
}

func TestSlowInjectsLatencyNotFailure(t *testing.T) {
	f := New(lqp.NewLocal(testDB(2)), Profile{SlowEvery: 1, Latency: 30 * time.Millisecond})
	start := time.Now()
	r, err := f.Execute(lqp.Retrieve("ALUMNUS"))
	if err != nil || r.Cardinality() != 2 {
		t.Fatalf("Execute = %v, %v", r, err)
	}
	if e := time.Since(start); e < 30*time.Millisecond {
		t.Errorf("latency spike not injected (took %v)", e)
	}
	_, _, slows, _ := f.Injected()
	if slows != 1 {
		t.Errorf("slows = %d", slows)
	}
}

func TestHangBlocksThenFails(t *testing.T) {
	f := New(lqp.NewLocal(testDB(2)), Profile{HangEvery: 1, Hang: 20 * time.Millisecond})
	start := time.Now()
	_, err := f.Execute(lqp.Retrieve("ALUMNUS"))
	if err == nil || !IsInjected(err) {
		t.Fatalf("err = %v, want injected hang", err)
	}
	if e := time.Since(start); e < 20*time.Millisecond {
		t.Errorf("hang returned after %v, want >= 20ms", e)
	}
}

func TestCutCursorDiesMidStream(t *testing.T) {
	f := New(lqp.NewLocal(testDB(700)), Profile{CutEvery: 1, CutAfter: 2})
	cur, err := f.Open(lqp.Retrieve("ALUMNUS"))
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	rows := 0
	batches := 0
	for {
		b, err := cur.Next()
		if err != nil {
			if !IsInjected(err) {
				t.Fatalf("cursor died with %v, want injected cut", err)
			}
			break
		}
		batches++
		rows += len(b)
	}
	if batches != 2 {
		t.Errorf("stream delivered %d batches before the cut, want 2", batches)
	}
	if rows != 512 {
		t.Errorf("delivered %d rows, want 512", rows)
	}
	if _, _, _, cuts := f.Injected(); cuts != 1 {
		t.Errorf("cuts = %d", cuts)
	}
}

func TestPingDeadAndHungReplicas(t *testing.T) {
	dead := New(lqp.NewLocal(testDB(2)), Profile{ErrEvery: 1})
	if err := dead.Ping(time.Second); err == nil || !IsInjected(err) {
		t.Errorf("dead replica ping = %v, want injected", err)
	}

	hung := New(lqp.NewLocal(testDB(2)), Profile{HangEvery: 1, Hang: 10 * time.Second})
	start := time.Now()
	err := hung.Ping(30 * time.Millisecond)
	if err == nil {
		t.Errorf("hung replica ping succeeded")
	}
	if e := time.Since(start); e > time.Second {
		t.Errorf("ping ignored its deadline (took %v)", e)
	}

	ok := New(lqp.NewLocal(testDB(2)), Profile{})
	if err := ok.Ping(time.Second); err != nil {
		t.Errorf("healthy replica ping = %v", err)
	}

	cadence := New(lqp.NewLocal(testDB(2)), Profile{PingErrEvery: 2})
	fails := 0
	for i := 0; i < 10; i++ {
		if cadence.Ping(time.Second) != nil {
			fails++
		}
	}
	if fails != 5 {
		t.Errorf("PingErrEvery=2 failed %d/10 probes, want 5", fails)
	}
}

func TestFlakyForwardsCapabilities(t *testing.T) {
	f := New(lqp.NewLocal(testDB(7)), Profile{})
	if f.Name() != "AD" {
		t.Errorf("Name = %q", f.Name())
	}
	rels, err := f.Relations()
	if err != nil || len(rels) != 1 {
		t.Errorf("Relations = %v, %v", rels, err)
	}
	st, err := f.Stats()
	if err != nil || len(st) != 1 || st[0].Rows != 7 {
		t.Errorf("Stats = %+v, %v", st, err)
	}
	r, err := f.ExecutePlan(lqp.Plan{Ops: []lqp.Op{lqp.Retrieve("ALUMNUS")}})
	if err != nil || r.Cardinality() != 7 {
		t.Errorf("ExecutePlan = %v, %v", r, err)
	}
	cur, err := f.OpenPlan(lqp.Plan{Ops: []lqp.Op{lqp.Retrieve("ALUMNUS")}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := rel.Drain(cur)
	if err != nil || out.Cardinality() != 7 {
		t.Errorf("OpenPlan drained = %v, %v", out, err)
	}
}

func TestFlakyConnCutsAfterReads(t *testing.T) {
	server, client := net.Pipe()
	defer server.Close()
	flaky := WrapConn(client, ConnProfile{CutAfterReads: 2})
	defer flaky.Close()

	go func() {
		for i := 0; i < 3; i++ {
			server.Write([]byte("x"))
		}
	}()

	buf := make([]byte, 1)
	for i := 0; i < 2; i++ {
		if _, err := flaky.Read(buf); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	if _, err := flaky.Read(buf); err != io.ErrClosedPipe {
		t.Fatalf("read past cut = %v, want io.ErrClosedPipe", err)
	}
	if !flaky.Cut() {
		t.Errorf("Cut() = false after the cut")
	}
	// Every subsequent operation fails too — the conn is dead, not flaky.
	if _, err := flaky.Write([]byte("y")); err != io.ErrClosedPipe {
		t.Errorf("write after cut = %v", err)
	}
}
