package faultinject

// The disk fault layer: deterministic, seeded wrappers for the persistence
// seams of internal/store — the write path (FlakyFile implements
// segment.File over the real log handle) and the recovery read path
// (FlipReader rots bytes as they are read). The kill-matrix tests in
// internal/store are proven against these: whatever faults fire, recovery
// must still yield exactly a prefix of acknowledged writes.
//
// As with the network layer above, every fault draws from an atomic counter
// phase-rotated by the profile's Seed — same profile, same seed, same
// faults, every run.

import (
	"io"
	"sync/atomic"
)

// DiskProfile fixes a FlakyFile's fault schedule. Cadences follow the
// package convention: every Nth call, phase-rotated by Seed, 0 disables.
type DiskProfile struct {
	// Seed rotates the phase of every cadence counter.
	Seed int64

	// ShortWriteEvery: every Nth Write persists only half the buffer and
	// fails — a torn record. The store must latch read-only and recovery
	// must truncate the tail.
	ShortWriteEvery int
	// WriteErrEvery: every Nth Write fails without persisting anything.
	WriteErrEvery int
	// SyncErrEvery: every Nth Sync fails after the data reached the OS —
	// the fsync-returned-EIO case a durable store must treat as fatal for
	// the acknowledgment, not as retryable. (Torn final records — the crash
	// case — are produced by the kill-matrix tests truncating the log at
	// every byte, not by a cadence.)
	SyncErrEvery int
}

// FlakyFile wraps a segment.File with the profile's write-path faults. It is
// the value store.Options.WrapFile returns.
type FlakyFile struct {
	inner interface {
		io.Writer
		io.Closer
		Sync() error
	}
	p      DiskProfile
	writes atomic.Int64
	syncs  atomic.Int64

	injectedWrites atomic.Int64
	injectedSyncs  atomic.Int64
}

// WrapFile wraps f with profile p.
func WrapFile(f interface {
	io.Writer
	io.Closer
	Sync() error
}, p DiskProfile) *FlakyFile {
	return &FlakyFile{inner: f, p: p}
}

// Injected reports how many write and sync faults have fired.
func (f *FlakyFile) Injected() (writes, syncs int64) {
	return f.injectedWrites.Load(), f.injectedSyncs.Load()
}

func (f *FlakyFile) Write(b []byte) (int, error) {
	n := f.writes.Add(1)
	switch {
	case hit(n, f.p.ShortWriteEvery, f.p.Seed):
		f.injectedWrites.Add(1)
		written, _ := f.inner.Write(b[:len(b)/2])
		return written, &Error{Kind: "shortwrite", Target: "disk", N: n}
	case hit(n, f.p.WriteErrEvery, f.p.Seed):
		f.injectedWrites.Add(1)
		return 0, &Error{Kind: "writeerr", Target: "disk", N: n}
	}
	return f.inner.Write(b)
}

func (f *FlakyFile) Sync() error {
	n := f.syncs.Add(1)
	if hit(n, f.p.SyncErrEvery, f.p.Seed) {
		f.injectedSyncs.Add(1)
		// The data may or may not be durable — exactly the ambiguity of a
		// real EIO from fsync. The store must not re-acknowledge.
		f.inner.Sync()
		return &Error{Kind: "syncerr", Target: "disk", N: n}
	}
	return f.inner.Sync()
}

func (f *FlakyFile) Close() error { return f.inner.Close() }

// FlipReader wraps a reader and flips one bit in every FlipEvery-th byte
// delivered — read-time bit rot. The CRC32C framing must turn every flip
// into a detected corruption, never a silently wrong payload.
type FlipReader struct {
	inner io.Reader
	// FlipEvery: every Nth byte delivered has one bit flipped (0 disables).
	FlipEvery int
	// Seed rotates which byte of each window is flipped and which bit.
	Seed    int64
	n       int64
	Flipped int64
}

// NewFlipReader wraps r, flipping a bit in every flipEvery-th byte.
func NewFlipReader(r io.Reader, flipEvery int, seed int64) *FlipReader {
	return &FlipReader{inner: r, FlipEvery: flipEvery, Seed: seed}
}

func (r *FlipReader) Read(b []byte) (int, error) {
	n, err := r.inner.Read(b)
	if r.FlipEvery > 0 {
		for i := 0; i < n; i++ {
			r.n++
			if hit(r.n, r.FlipEvery, r.Seed) {
				b[i] ^= 1 << uint((r.Seed+r.n)%8)
				r.Flipped++
			}
		}
	} else {
		r.n += int64(n)
	}
	return n, err
}
