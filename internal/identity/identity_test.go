package identity

import (
	"testing"

	"repro/internal/rel"
)

func TestExact(t *testing.T) {
	e := Exact{}
	if e.Canonical(rel.String("IBM")) == e.Canonical(rel.String("ibm")) {
		t.Error("Exact folded case")
	}
	if e.Canonical(rel.String("IBM")) != e.Canonical(rel.String("IBM")) {
		t.Error("Exact unstable")
	}
	if e.Canonical(rel.Int(1)) == e.Canonical(rel.String("1")) {
		t.Error("Exact conflated kinds")
	}
}

func TestCaseFoldPaperCases(t *testing.T) {
	cf := CaseFold{}
	same := [][2]string{
		{"CitiCorp", "Citicorp"}, // the worked example's mismatch
		{"IBM", "I.B.M."},        // §I's example
		{"IBM", "ibm"},
		{"Banker's Trust", "Bankers Trust"},
		{"AT&T", "at&t"},
		{"Langley  Castle", "Langley Castle"}, // internal whitespace
		{" DEC", "DEC"},                       // leading whitespace
		{"DEC ", "DEC"},                       // trailing whitespace
	}
	for _, c := range same {
		if cf.Canonical(rel.String(c[0])) != cf.Canonical(rel.String(c[1])) {
			t.Errorf("CaseFold should match %q and %q", c[0], c[1])
		}
	}
	diff := [][2]string{
		{"IBM", "DEC"},
		{"Ford", "Fordham"},
		{"", "x"},
	}
	for _, c := range diff {
		if cf.Canonical(rel.String(c[0])) == cf.Canonical(rel.String(c[1])) {
			t.Errorf("CaseFold should distinguish %q and %q", c[0], c[1])
		}
	}
}

func TestCaseFoldNonStrings(t *testing.T) {
	cf := CaseFold{}
	if cf.Canonical(rel.Int(1)) == cf.Canonical(rel.Int(2)) {
		t.Error("distinct ints conflated")
	}
	if cf.Canonical(rel.Int(1)) != cf.Canonical(rel.Int(1)) {
		t.Error("int canonicalization unstable")
	}
	if cf.Canonical(rel.Null()) != rel.Null().Key() {
		t.Error("null should fall back to exact key")
	}
}

func TestSynonyms(t *testing.T) {
	s := NewSynonyms(CaseFold{},
		[]rel.Value{rel.String("Big Blue"), rel.String("IBM")},
		[]rel.Value{rel.String("DEC"), rel.String("Digital Equipment")},
	)
	if s.Canonical(rel.String("big blue")) != s.Canonical(rel.String("I.B.M.")) {
		t.Error("synonym group (via inner CaseFold) not matched")
	}
	if s.Canonical(rel.String("DEC")) != s.Canonical(rel.String("Digital Equipment")) {
		t.Error("second synonym group not matched")
	}
	if s.Canonical(rel.String("IBM")) == s.Canonical(rel.String("DEC")) {
		t.Error("distinct groups conflated")
	}
	if s.Canonical(rel.String("Oracle")) != (CaseFold{}).Canonical(rel.String("Oracle")) {
		t.Error("non-synonym should fall through to inner resolver")
	}
}

func TestSynonymsEmptyGroup(t *testing.T) {
	s := NewSynonyms(Exact{}, nil, []rel.Value{})
	if s.Canonical(rel.String("x")) != (Exact{}).Canonical(rel.String("x")) {
		t.Error("empty groups should be ignored")
	}
}
