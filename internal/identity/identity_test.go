package identity

import (
	"math"
	"strconv"
	"sync"
	"testing"

	"repro/internal/rel"
)

func TestExact(t *testing.T) {
	e := Exact{}
	if e.Canonical(rel.String("IBM")) == e.Canonical(rel.String("ibm")) {
		t.Error("Exact folded case")
	}
	if e.Canonical(rel.String("IBM")) != e.Canonical(rel.String("IBM")) {
		t.Error("Exact unstable")
	}
	if e.Canonical(rel.Int(1)) == e.Canonical(rel.String("1")) {
		t.Error("Exact conflated kinds")
	}
}

func TestCaseFoldPaperCases(t *testing.T) {
	cf := CaseFold{}
	same := [][2]string{
		{"CitiCorp", "Citicorp"}, // the worked example's mismatch
		{"IBM", "I.B.M."},        // §I's example
		{"IBM", "ibm"},
		{"Banker's Trust", "Bankers Trust"},
		{"AT&T", "at&t"},
		{"Langley  Castle", "Langley Castle"}, // internal whitespace
		{" DEC", "DEC"},                       // leading whitespace
		{"DEC ", "DEC"},                       // trailing whitespace
	}
	for _, c := range same {
		if cf.Canonical(rel.String(c[0])) != cf.Canonical(rel.String(c[1])) {
			t.Errorf("CaseFold should match %q and %q", c[0], c[1])
		}
	}
	diff := [][2]string{
		{"IBM", "DEC"},
		{"Ford", "Fordham"},
		{"", "x"},
	}
	for _, c := range diff {
		if cf.Canonical(rel.String(c[0])) == cf.Canonical(rel.String(c[1])) {
			t.Errorf("CaseFold should distinguish %q and %q", c[0], c[1])
		}
	}
}

func TestCaseFoldNonStrings(t *testing.T) {
	cf := CaseFold{}
	if cf.Canonical(rel.Int(1)) == cf.Canonical(rel.Int(2)) {
		t.Error("distinct ints conflated")
	}
	if cf.Canonical(rel.Int(1)) != cf.Canonical(rel.Int(1)) {
		t.Error("int canonicalization unstable")
	}
	if cf.Canonical(rel.Null()) != rel.Null().Key() {
		t.Error("null should fall back to exact key")
	}
}

func TestSynonyms(t *testing.T) {
	s := NewSynonyms(CaseFold{},
		[]rel.Value{rel.String("Big Blue"), rel.String("IBM")},
		[]rel.Value{rel.String("DEC"), rel.String("Digital Equipment")},
	)
	if s.Canonical(rel.String("big blue")) != s.Canonical(rel.String("I.B.M.")) {
		t.Error("synonym group (via inner CaseFold) not matched")
	}
	if s.Canonical(rel.String("DEC")) != s.Canonical(rel.String("Digital Equipment")) {
		t.Error("second synonym group not matched")
	}
	if s.Canonical(rel.String("IBM")) == s.Canonical(rel.String("DEC")) {
		t.Error("distinct groups conflated")
	}
	if s.Canonical(rel.String("Oracle")) != (CaseFold{}).Canonical(rel.String("Oracle")) {
		t.Error("non-synonym should fall through to inner resolver")
	}
}

func TestSynonymsEmptyGroup(t *testing.T) {
	s := NewSynonyms(Exact{}, nil, []rel.Value{})
	if s.Canonical(rel.String("x")) != (Exact{}).Canonical(rel.String("x")) {
		t.Error("empty groups should be ignored")
	}
}

// TestCanonicalIDAgreesWithCanonical: for every resolver, interned IDs are
// equal exactly when canonical strings are — the contract the hash-native
// Join/Merge/Restrict paths rely on.
func TestCanonicalIDAgreesWithCanonical(t *testing.T) {
	resolvers := map[string]Resolver{
		"exact":    Exact{},
		"casefold": CaseFold{},
		"synonyms": NewSynonyms(CaseFold{},
			[]rel.Value{rel.String("Big Blue"), rel.String("IBM")},
		),
	}
	values := []rel.Value{
		rel.String("IBM"), rel.String("I.B.M."), rel.String("ibm"),
		rel.String("Big Blue"), rel.String("DEC"), rel.String(""),
		rel.Int(1), rel.Int(2), rel.Float(1), rel.Bool(true), rel.Null(),
		rel.Float(0), rel.Float(math.Copysign(0, -1)), rel.Float(math.NaN()),
	}
	for name, res := range resolvers {
		for _, v := range values {
			for _, w := range values {
				wantSame := res.Canonical(v) == res.Canonical(w)
				gotSame := res.CanonicalID(v) == res.CanonicalID(w)
				if wantSame != gotSame {
					t.Errorf("%s: CanonicalID equality for %v vs %v = %v, Canonical equality = %v",
						name, v, w, gotSame, wantSame)
				}
			}
		}
	}
}

// TestCanonicalIDStableAcrossGoroutines: the parallel executor probes one
// shared resolver concurrently; every goroutine must see the same ID.
func TestCanonicalIDStableAcrossGoroutines(t *testing.T) {
	s := NewSynonyms(CaseFold{}, []rel.Value{rel.String("IBM"), rel.String("Big Blue")})
	const goroutines = 8
	ids := make([]uint64, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				ids[i] = s.CanonicalID(rel.String("big blue"))
			}
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if ids[i] != ids[0] {
			t.Fatalf("goroutine %d saw ID %d, goroutine 0 saw %d", i, ids[i], ids[0])
		}
	}
	if s.CanonicalID(rel.String("I.B.M.")) != ids[0] {
		t.Error("synonym group did not intern to one ID")
	}
}

// TestSynonymsSurrogateRangeGroups is the regression test for the group-key
// construction: string(rune(gi)) mapped every surrogate-range group index
// (0xD800–0xDFFF) to U+FFFD, silently merging distinct synonym groups.
func TestSynonymsSurrogateRangeGroups(t *testing.T) {
	groups := make([][]rel.Value, 0xD802)
	for i := range groups {
		groups[i] = []rel.Value{rel.String("member-" + strconv.Itoa(i))}
	}
	s := NewSynonyms(Exact{}, groups...)
	a := s.Canonical(rel.String("member-55296")) // group 0xD800
	b := s.Canonical(rel.String("member-55297")) // group 0xD801
	if a == b {
		t.Fatalf("groups 0xD800 and 0xD801 merged: both canonicalize to %q", a)
	}
}

// TestFlushInternCaches: a flush at a quiescent point releases the global
// tables and fresh IDs still satisfy the CanonicalID contract.
func TestFlushInternCaches(t *testing.T) {
	a := Exact{}.CanonicalID(rel.String("flush-me"))
	FlushInternCaches()
	b := Exact{}.CanonicalID(rel.String("flush-me"))
	c := Exact{}.CanonicalID(rel.String("flush-me"))
	if b != c {
		t.Fatal("post-flush IDs unstable")
	}
	if (Exact{}).CanonicalID(rel.String("other")) == b {
		t.Fatal("post-flush IDs conflate distinct values")
	}
	_ = a // pre-flush IDs are not comparable with post-flush ones by contract
}
