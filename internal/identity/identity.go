// Package identity implements inter-database instance identification: the
// paper assumes (§I) that "the inter-database instance identifier mismatching
// problem (e.g., IBM vs. I.B.M.) has been resolved and the information is
// available for the PQP to use". The worked example relies on it — the
// Alumni Database spells the bank "CitiCorp" while the Placement Database
// spells it "Citicorp", yet Appendix A joins them as one entity.
//
// A Resolver canonicalizes a value for entity comparison. The polygen
// processor applies the resolver to attribute–attribute equality comparisons
// (Join, Merge, Restrict between two attributes); constant Selects use exact
// matching, as the paper's Table 4 does for DEG = "MBA".
//
// Resolvers expose two forms of the canonical identity. Canonical returns
// the canonical string — the reference form, used for rendering and by the
// string-keyed reference operators. CanonicalID returns a small interned
// uint64 for the same equivalence class — the hot-path form: the polygen
// engine's Join, Merge and Restrict probe maps of uint64 instead of
// allocating a canonical string per comparison. The two agree by
// construction: CanonicalID(x) == CanonicalID(y) iff Canonical(x) ==
// Canonical(y).
package identity

import (
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/rel"
)

// Resolver canonicalizes values for inter-database entity comparison.
type Resolver interface {
	// Canonical returns a key such that two values denote the same
	// real-world instance iff their keys are equal.
	Canonical(v rel.Value) string
	// CanonicalID returns an interned identifier for the value's canonical
	// form: two values denote the same real-world instance iff their IDs are
	// equal. IDs are only comparable across calls to the same resolver.
	// Implementations are safe for concurrent use (the parallel executor
	// probes one shared resolver from many goroutines).
	CanonicalID(v rel.Value) uint64
}

// interner assigns dense uint64 IDs to canonical forms. The hot path — a
// join probing the same resolver once per tuple — reads an immutable
// snapshot map through an atomic pointer, so steady-state probes take no
// lock and allocate nothing. Misses fall into the mutex-guarded master
// tables; the snapshot is republished on rough doublings, which keeps the
// total copying linear in the number of distinct values ever interned.
// String values (the common case in the paper's federations) are cached by
// their raw string payload, which hashes as cheaply as the canonical-string
// keys the engine used to build — minus the per-probe allocation; other
// kinds are cached by the comparable rel.Value itself. byCanon guarantees
// that distinct values with equal canonical strings share an ID.
type interner struct {
	fastStr   atomic.Pointer[map[string]uint64]
	fastOther atomic.Pointer[map[rel.Value]uint64]

	mu       sync.Mutex
	byStr    map[string]uint64
	byOther  map[rel.Value]uint64
	byCanon  map[string]uint64
	pubStr   int // len(byStr) at last snapshot publish
	pubOther int // len(byOther) at last snapshot publish
}

// id returns the interned ID of v's canonical form under canon.
func (in *interner) id(v rel.Value, canon func(rel.Value) string) uint64 {
	if v.Kind() == rel.KindString {
		if m := in.fastStr.Load(); m != nil {
			if id, ok := (*m)[v.Str()]; ok {
				return id
			}
		}
	} else if cacheableValue(v) {
		if m := in.fastOther.Load(); m != nil {
			if id, ok := (*m)[v]; ok {
				return id
			}
		}
	}
	return in.slow(v, canon)
}

// cacheableValue reports whether v can key a cache map. NaN is never equal
// to itself, so a NaN key would miss on every probe and grow the table
// unboundedly; it is routed through byCanon only (strconv formats every NaN
// identically, so the ID is still stable).
func cacheableValue(v rel.Value) bool {
	return !(v.Kind() == rel.KindFloat && v.FloatVal() != v.FloatVal())
}

func (in *interner) slow(v rel.Value, canon func(rel.Value) string) uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.byCanon == nil {
		in.byStr = make(map[string]uint64)
		in.byOther = make(map[rel.Value]uint64)
		in.byCanon = make(map[string]uint64)
	}
	isStr := v.Kind() == rel.KindString
	var id uint64
	var ok bool
	switch {
	case isStr:
		id, ok = in.byStr[v.Str()]
	case cacheableValue(v):
		id, ok = in.byOther[v]
	}
	if !ok {
		c := canon(v)
		id, ok = in.byCanon[c]
		if !ok {
			id = uint64(len(in.byCanon)) + 1
			in.byCanon[c] = id
		}
		switch {
		case isStr:
			in.byStr[v.Str()] = id
		case cacheableValue(v):
			in.byOther[v] = id
		}
	}
	in.maybePublish()
	return id
}

// maybePublish refreshes the lock-free snapshots once the master tables have
// grown past roughly double their size at the previous publish (with a small
// floor so tiny tables publish promptly). Copying on doublings bounds total
// copy work at O(distinct values).
func (in *interner) maybePublish() {
	if len(in.byStr) >= in.pubStr*2+16 {
		m := make(map[string]uint64, len(in.byStr)*2)
		for k, id := range in.byStr {
			m[k] = id
		}
		in.fastStr.Store(&m)
		in.pubStr = len(in.byStr)
	}
	if len(in.byOther) >= in.pubOther*2+16 {
		m := make(map[rel.Value]uint64, len(in.byOther)*2)
		for k, id := range in.byOther {
			m[k] = id
		}
		in.fastOther.Store(&m)
		in.pubOther = len(in.byOther)
	}
}

// Scoped wraps a resolver with an intern table of its own, so the memory
// retained by CanonicalID is bounded by the wrapper's lifetime instead of
// the process's. The polygen algebra wraps its resolver in a Scoped at
// construction: one engine instance, one table, reclaimed with the engine.
type Scoped struct {
	inner  Resolver
	intern interner
}

// NewScoped returns inner wrapped with its own intern table. An already
// scoped resolver is returned unchanged.
func NewScoped(inner Resolver) Resolver {
	if s, ok := inner.(*Scoped); ok {
		return s
	}
	return &Scoped{inner: inner}
}

// Canonical implements Resolver by delegating to the wrapped resolver.
func (s *Scoped) Canonical(v rel.Value) string { return s.inner.Canonical(v) }

// CanonicalID implements Resolver over the wrapper's own table.
func (s *Scoped) CanonicalID(v rel.Value) uint64 { return s.intern.id(v, s.inner.Canonical) }

// Exact is a Resolver under which values match only if they are identical.
type Exact struct{}

// exactIntern backs Exact.CanonicalID. Exact is stateless — every Exact{}
// denotes the same resolver — so one process-wide table is its per-resolver
// intern table. The table grows with the number of distinct values ever
// compared through the bare singleton; the algebra avoids that by probing
// through a per-engine Scoped wrapper, and long-running callers that do use
// the singletons directly can call FlushInternCaches at quiescent points.
var exactIntern interner

// FlushInternCaches drops the process-wide intern tables behind the
// stateless resolvers (Exact, CaseFold), releasing all memory they retain.
// IDs issued before a flush are not comparable with IDs issued after it, so
// the caller must guarantee no query is being evaluated during the call —
// e.g. a server's idle-time maintenance between plans. Operators never
// retain canonical IDs across calls, so flushing between queries is safe.
func FlushInternCaches() {
	exactIntern.flush()
	caseFoldIntern.flush()
}

// flush resets the interner to its zero state.
func (in *interner) flush() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.byStr, in.byOther, in.byCanon = nil, nil, nil
	in.pubStr, in.pubOther = 0, 0
	in.fastStr.Store(nil)
	in.fastOther.Store(nil)
}

// Canonical implements Resolver.
func (Exact) Canonical(v rel.Value) string { return v.Key() }

// CanonicalID implements Resolver.
func (Exact) CanonicalID(v rel.Value) uint64 { return exactIntern.id(v, Exact{}.Canonical) }

// CaseFold matches strings case-insensitively with whitespace and
// punctuation normalization ("CitiCorp" ≡ "Citicorp", "I.B.M." ≡ "IBM").
// Non-string values fall back to exact matching.
type CaseFold struct{}

// caseFoldIntern backs CaseFold.CanonicalID; like Exact, CaseFold is a
// stateless singleton resolver.
var caseFoldIntern interner

// Canonical implements Resolver.
func (CaseFold) Canonical(v rel.Value) string {
	if v.Kind() != rel.KindString {
		return v.Key()
	}
	s := v.Str()
	var b strings.Builder
	b.Grow(len(s) + 2)
	b.WriteString("\x00s")
	prevSpace := false
	for _, r := range s {
		switch {
		case r == '.' || r == ',' || r == '\'':
			// Punctuation commonly differing across databases is dropped.
		case r == ' ' || r == '\t':
			if !prevSpace && b.Len() > 2 {
				b.WriteByte(' ')
				prevSpace = true
			}
			continue
		default:
			b.WriteRune(foldRune(r))
			prevSpace = false
		}
	}
	return strings.TrimRight(b.String(), " ")
}

// CanonicalID implements Resolver.
func (CaseFold) CanonicalID(v rel.Value) uint64 { return caseFoldIntern.id(v, CaseFold{}.Canonical) }

func foldRune(r rune) rune {
	if r >= 'A' && r <= 'Z' {
		return r + ('a' - 'A')
	}
	return r
}

// Synonyms resolves via an explicit synonym table layered over an inner
// resolver: every value in a synonym group canonicalizes to the group's
// representative. This models the paper's assumption that resolved identifier
// mappings "are available for the PQP to use" as data.
type Synonyms struct {
	inner  Resolver
	table  map[string]string // inner-canonical form -> group key
	intern interner
}

// NewSynonyms builds a Synonyms resolver over inner. Each group lists values
// that denote the same instance.
func NewSynonyms(inner Resolver, groups ...[]rel.Value) *Synonyms {
	s := &Synonyms{inner: inner, table: make(map[string]string)}
	for gi, g := range groups {
		if len(g) == 0 {
			continue
		}
		// The group index makes the key unique; the representative's
		// canonical form is appended for debuggability only. (string(rune(gi))
		// was wrong here: surrogate-range indices all map to U+FFFD, silently
		// merging distinct groups.)
		key := "\x00g" + strconv.Itoa(gi) + "\x01" + s.inner.Canonical(g[0])
		for _, v := range g {
			s.table[s.inner.Canonical(v)] = key
		}
	}
	return s
}

// Canonical implements Resolver.
func (s *Synonyms) Canonical(v rel.Value) string {
	c := s.inner.Canonical(v)
	if g, ok := s.table[c]; ok {
		return g
	}
	return c
}

// CanonicalID implements Resolver.
func (s *Synonyms) CanonicalID(v rel.Value) uint64 { return s.intern.id(v, s.Canonical) }
