// Package identity implements inter-database instance identification: the
// paper assumes (§I) that "the inter-database instance identifier mismatching
// problem (e.g., IBM vs. I.B.M.) has been resolved and the information is
// available for the PQP to use". The worked example relies on it — the
// Alumni Database spells the bank "CitiCorp" while the Placement Database
// spells it "Citicorp", yet Appendix A joins them as one entity.
//
// A Resolver canonicalizes a value for entity comparison. The polygen
// processor applies the resolver to attribute–attribute equality comparisons
// (Join, Merge, Restrict between two attributes); constant Selects use exact
// matching, as the paper's Table 4 does for DEG = "MBA".
package identity

import (
	"strings"

	"repro/internal/rel"
)

// Resolver canonicalizes values for inter-database entity comparison.
type Resolver interface {
	// Canonical returns a key such that two values denote the same
	// real-world instance iff their keys are equal.
	Canonical(v rel.Value) string
}

// Exact is a Resolver under which values match only if they are identical.
type Exact struct{}

// Canonical implements Resolver.
func (Exact) Canonical(v rel.Value) string { return v.Key() }

// CaseFold matches strings case-insensitively with whitespace and
// punctuation normalization ("CitiCorp" ≡ "Citicorp", "I.B.M." ≡ "IBM").
// Non-string values fall back to exact matching.
type CaseFold struct{}

// Canonical implements Resolver.
func (CaseFold) Canonical(v rel.Value) string {
	if v.Kind() != rel.KindString {
		return v.Key()
	}
	s := v.Str()
	var b strings.Builder
	b.Grow(len(s) + 2)
	b.WriteString("\x00s")
	prevSpace := false
	for _, r := range s {
		switch {
		case r == '.' || r == ',' || r == '\'':
			// Punctuation commonly differing across databases is dropped.
		case r == ' ' || r == '\t':
			if !prevSpace && b.Len() > 2 {
				b.WriteByte(' ')
				prevSpace = true
			}
			continue
		default:
			b.WriteRune(foldRune(r))
			prevSpace = false
		}
	}
	return strings.TrimRight(b.String(), " ")
}

func foldRune(r rune) rune {
	if r >= 'A' && r <= 'Z' {
		return r + ('a' - 'A')
	}
	return r
}

// Synonyms resolves via an explicit synonym table layered over an inner
// resolver: every value in a synonym group canonicalizes to the group's
// representative. This models the paper's assumption that resolved identifier
// mappings "are available for the PQP to use" as data.
type Synonyms struct {
	inner Resolver
	table map[string]string // inner-canonical form -> group key
}

// NewSynonyms builds a Synonyms resolver over inner. Each group lists values
// that denote the same instance.
func NewSynonyms(inner Resolver, groups ...[]rel.Value) *Synonyms {
	s := &Synonyms{inner: inner, table: make(map[string]string)}
	for gi, g := range groups {
		if len(g) == 0 {
			continue
		}
		key := "\x00g" + s.inner.Canonical(g[0]) + string(rune(gi))
		for _, v := range g {
			s.table[s.inner.Canonical(v)] = key
		}
	}
	return s
}

// Canonical implements Resolver.
func (s *Synonyms) Canonical(v rel.Value) string {
	c := s.inner.Canonical(v)
	if g, ok := s.table[c]; ok {
		return g
	}
	return c
}
