package lqp

import (
	"sync"
	"time"

	"repro/internal/rel"
)

// Counting wraps an LQP and counts the operations routed to it, optionally
// injecting latency. It serves two purposes: tests use it to assert that
// the translator pushed work to the right LQP (e.g. that a selection
// executed locally instead of retrieving the whole relation), and
// benchmarks use the latency injection to model wide-area local databases —
// the paper's federation spanned the US, England and Canada.
//
// Latency models a streaming transfer: it is charged once per
// rel.DefaultBatchSize batch of result rows (minimum one batch), not once
// per operation — a 100k-tuple Retrieve over a wide-area link costs
// hundreds of batch times, not one. Crucially, only the rows the LQP
// actually returns are charged: a pushed-down subplan that filters 100k
// rows to 40 pays for 40, which is exactly the transfer saving the
// cost-based optimizer exists to win (B-OPT measures it). On the
// materializing path (Execute/ExecutePlan) the whole transfer is paid
// before the relation is returned; on the streaming path (Open/OpenPlan)
// each batch pays as it is pulled, so a prefetching consumer overlaps the
// waits with its own work.
//
// Alongside the latency model, Counting tracks the simulated transfer
// volume: Rows/Cells transferred across the boundary (cells ≈ bytes for a
// fixed value width). The B-OPT benchmarks report both.
type Counting struct {
	inner LQP
	// Latency is the injected per-batch transfer time (0 = none).
	Latency time.Duration

	mu     sync.Mutex
	counts map[OpKind]int
	ops    []Op
	plans  []Plan
	rows   int64
	cells  int64
}

// NewCounting wraps inner.
func NewCounting(inner LQP) *Counting {
	return &Counting{inner: inner, counts: make(map[OpKind]int)}
}

// Name implements LQP.
func (c *Counting) Name() string { return c.inner.Name() }

// Relations implements LQP.
func (c *Counting) Relations() ([]string, error) { return c.inner.Relations() }

// Stats forwards the statistics capability when the wrapped LQP has it.
func (c *Counting) Stats() ([]RelationStats, error) {
	st, ok, err := StatsOf(c.inner)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	return st, nil
}

func (c *Counting) record(op Op) {
	c.mu.Lock()
	c.counts[op.Kind]++
	c.ops = append(c.ops, op)
	c.mu.Unlock()
}

// recordTransfer books rows × width transferred cells.
func (c *Counting) recordTransfer(rows, width int) {
	c.mu.Lock()
	c.rows += int64(rows)
	c.cells += int64(rows * width)
	c.mu.Unlock()
}

// chargeResult books the transfer volume of a materialized result and pays
// its full per-batch latency up front.
func (c *Counting) chargeResult(r *rel.Relation) {
	if r == nil {
		if c.Latency > 0 {
			time.Sleep(c.Latency)
		}
		return
	}
	c.recordTransfer(len(r.Tuples), r.Schema.Len())
	if c.Latency > 0 {
		batches := 1
		if n := (len(r.Tuples) + rel.DefaultBatchSize - 1) / rel.DefaultBatchSize; n > 1 {
			batches = n
		}
		time.Sleep(time.Duration(batches) * c.Latency)
	}
}

// Execute implements LQP, recording the operation and paying the full
// injected transfer time (Latency per batch of the result) up front.
func (c *Counting) Execute(op Op) (*rel.Relation, error) {
	c.record(op)
	r, err := c.inner.Execute(op)
	c.chargeResult(r)
	return r, err
}

// ExecutePlan implements PlanRunner, recording the pushed plan and charging
// latency and transfer volume only for the rows that survive the pushed
// steps.
func (c *Counting) ExecutePlan(p Plan) (*rel.Relation, error) {
	c.recordPlan(p)
	r, err := ExecutePlanOn(c.inner, p)
	c.chargeResult(r)
	return r, err
}

// recordPlan books a plan: the base op counts as an operation (it is what
// crosses the request wire), the pushed steps are kept for inspection.
func (c *Counting) recordPlan(p Plan) {
	c.record(p.Base())
	c.mu.Lock()
	c.plans = append(c.plans, p)
	c.mu.Unlock()
}

// Open implements Streamer, recording the operation once and charging
// Latency and transfer volume per batch as the cursor is pulled.
func (c *Counting) Open(op Op) (rel.Cursor, error) {
	c.record(op)
	cur, err := OpenLQP(c.inner, op)
	return c.meterCursor(cur, err)
}

// OpenPlan implements PlanStreamer: only batches of filtered rows pay.
func (c *Counting) OpenPlan(p Plan) (rel.Cursor, error) {
	c.recordPlan(p)
	cur, err := OpenPlanOn(c.inner, p)
	return c.meterCursor(cur, err)
}

func (c *Counting) meterCursor(cur rel.Cursor, err error) (rel.Cursor, error) {
	if err != nil {
		if c.Latency > 0 {
			time.Sleep(c.Latency)
		}
		return nil, err
	}
	return &meteredCursor{in: cur, c: c, width: cur.Schema().Len()}, nil
}

// meteredCursor delays every batch by the wrapper's latency and books its
// transfer volume, modeling per-batch wide-area transfer of exactly the
// rows that cross the boundary.
type meteredCursor struct {
	in    rel.Cursor
	c     *Counting
	width int
}

func (m *meteredCursor) Schema() *rel.Schema { return m.in.Schema() }

func (m *meteredCursor) Next() ([]rel.Tuple, error) {
	batch, err := m.in.Next()
	if err != nil {
		return nil, err // end-of-stream and errors carry no rows to transfer
	}
	m.c.recordTransfer(len(batch), m.width)
	if m.c.Latency > 0 {
		time.Sleep(m.c.Latency)
	}
	return batch, nil
}

func (m *meteredCursor) Close() error { return m.in.Close() }

// Count returns how many operations of kind k have executed.
func (c *Counting) Count(k OpKind) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[k]
}

// Total returns the total number of executed operations.
func (c *Counting) Total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.ops)
}

// Ops returns a copy of the executed operations in order.
func (c *Counting) Ops() []Op {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Op(nil), c.ops...)
}

// Plans returns a copy of the pushed-down subplans executed, in order.
func (c *Counting) Plans() []Plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Plan(nil), c.plans...)
}

// RowsTransferred returns the number of result rows that crossed the
// simulated wide-area boundary.
func (c *Counting) RowsTransferred() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rows
}

// CellsTransferred returns rows × columns delivered — the simulated
// bytes-on-wire metric of the B-OPT benchmarks (cells are
// fixed-width-equivalent).
func (c *Counting) CellsTransferred() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cells
}

// Reset clears the recorded operations and transfer counters.
func (c *Counting) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.counts = make(map[OpKind]int)
	c.ops = nil
	c.plans = nil
	c.rows = 0
	c.cells = 0
}

var (
	_ Streamer      = (*Counting)(nil)
	_ PlanRunner    = (*Counting)(nil)
	_ PlanStreamer  = (*Counting)(nil)
	_ StatsProvider = (*Counting)(nil)
)
