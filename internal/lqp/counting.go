package lqp

import (
	"sync"
	"time"

	"repro/internal/rel"
)

// Counting wraps an LQP and counts the operations routed to it, optionally
// injecting latency. It serves two purposes: tests use it to assert that
// the translator pushed work to the right LQP (e.g. that a selection
// executed locally instead of retrieving the whole relation), and
// benchmarks use the latency injection to model wide-area local databases —
// the paper's federation spanned the US, England and Canada.
//
// Latency models a streaming transfer: it is charged once per
// rel.DefaultBatchSize batch of result rows (minimum one batch), not once
// per operation — a 100k-tuple Retrieve over a wide-area link costs
// hundreds of batch times, not one. On the materializing path (Execute)
// the whole transfer is paid before the relation is returned; on the
// streaming path (Open) each batch pays as it is pulled, so a prefetching
// consumer overlaps the waits with its own work.
type Counting struct {
	inner LQP
	// Latency is the injected per-batch transfer time (0 = none).
	Latency time.Duration

	mu     sync.Mutex
	counts map[OpKind]int
	ops    []Op
}

// NewCounting wraps inner.
func NewCounting(inner LQP) *Counting {
	return &Counting{inner: inner, counts: make(map[OpKind]int)}
}

// Name implements LQP.
func (c *Counting) Name() string { return c.inner.Name() }

// Relations implements LQP.
func (c *Counting) Relations() ([]string, error) { return c.inner.Relations() }

func (c *Counting) record(op Op) {
	c.mu.Lock()
	c.counts[op.Kind]++
	c.ops = append(c.ops, op)
	c.mu.Unlock()
}

// Execute implements LQP, recording the operation and paying the full
// injected transfer time (Latency per batch of the result) up front.
func (c *Counting) Execute(op Op) (*rel.Relation, error) {
	c.record(op)
	r, err := c.inner.Execute(op)
	if c.Latency > 0 {
		batches := 1
		if r != nil {
			if n := (len(r.Tuples) + rel.DefaultBatchSize - 1) / rel.DefaultBatchSize; n > 1 {
				batches = n
			}
		}
		time.Sleep(time.Duration(batches) * c.Latency)
	}
	return r, err
}

// Open implements Streamer, recording the operation once and charging
// Latency per batch as the cursor is pulled.
func (c *Counting) Open(op Op) (rel.Cursor, error) {
	c.record(op)
	cur, err := OpenLQP(c.inner, op)
	if err != nil {
		if c.Latency > 0 {
			time.Sleep(c.Latency)
		}
		return nil, err
	}
	if c.Latency <= 0 {
		return cur, nil
	}
	return &latencyCursor{in: cur, d: c.Latency}, nil
}

// latencyCursor delays every batch by d, modeling per-batch wide-area
// transfer time.
type latencyCursor struct {
	in rel.Cursor
	d  time.Duration
}

func (c *latencyCursor) Schema() *rel.Schema { return c.in.Schema() }

func (c *latencyCursor) Next() ([]rel.Tuple, error) {
	batch, err := c.in.Next()
	if err != nil {
		return nil, err // end-of-stream and errors carry no rows to transfer
	}
	time.Sleep(c.d)
	return batch, nil
}

func (c *latencyCursor) Close() error { return c.in.Close() }

// Count returns how many operations of kind k have executed.
func (c *Counting) Count(k OpKind) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[k]
}

// Total returns the total number of executed operations.
func (c *Counting) Total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.ops)
}

// Ops returns a copy of the executed operations in order.
func (c *Counting) Ops() []Op {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Op(nil), c.ops...)
}

// Reset clears the recorded operations.
func (c *Counting) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.counts = make(map[OpKind]int)
	c.ops = nil
}

var _ Streamer = (*Counting)(nil)
