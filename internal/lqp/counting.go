package lqp

import (
	"sync"
	"time"

	"repro/internal/rel"
)

// Counting wraps an LQP and counts the operations routed to it, optionally
// injecting a fixed per-operation latency. It serves two purposes: tests use
// it to assert that the translator pushed work to the right LQP (e.g. that a
// selection executed locally instead of retrieving the whole relation), and
// benchmarks use the latency injection to model wide-area local databases —
// the paper's federation spanned the US, England and Canada.
type Counting struct {
	inner LQP
	// Latency is added to every Execute call (0 = none).
	Latency time.Duration

	mu     sync.Mutex
	counts map[OpKind]int
	ops    []Op
}

// NewCounting wraps inner.
func NewCounting(inner LQP) *Counting {
	return &Counting{inner: inner, counts: make(map[OpKind]int)}
}

// Name implements LQP.
func (c *Counting) Name() string { return c.inner.Name() }

// Relations implements LQP.
func (c *Counting) Relations() ([]string, error) { return c.inner.Relations() }

// Execute implements LQP, recording the operation.
func (c *Counting) Execute(op Op) (*rel.Relation, error) {
	if c.Latency > 0 {
		time.Sleep(c.Latency)
	}
	c.mu.Lock()
	c.counts[op.Kind]++
	c.ops = append(c.ops, op)
	c.mu.Unlock()
	return c.inner.Execute(op)
}

// Count returns how many operations of kind k have executed.
func (c *Counting) Count(k OpKind) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[k]
}

// Total returns the total number of executed operations.
func (c *Counting) Total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.ops)
}

// Ops returns a copy of the executed operations in order.
func (c *Counting) Ops() []Op {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Op(nil), c.ops...)
}

// Reset clears the recorded operations.
func (c *Counting) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.counts = make(map[OpKind]int)
	c.ops = nil
}
