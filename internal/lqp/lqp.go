// Package lqp defines the Local Query Processor abstraction of the paper's
// Figure 1. To the Polygen Query Processor "each LQP behaves as a local
// relational system": it accepts a small repertoire of local operations
// (Retrieve, Select, Restrict, Project) against one local database and
// returns plain (untagged) relations. The PQP attaches origin tags to the
// results using the LQP's name as the execution location.
//
// Two implementations exist: Local (in-process, over a catalog.Database) and
// wire.Client (the same operations over TCP against a cmd/lqpd server),
// standing in for the paper's encapsulation of "unusual query interfaces"
// behind the LQP boundary. Beyond the base interface, an LQP may advertise
// optional capabilities, discovered by interface assertion:
//
//   - Streamer (stream.go): Open returns the result as a cursor of row
//     batches, which the PQP's streaming engine prefers — OpenLQP adapts
//     any other LQP by materializing and re-cutting into batches;
//   - PlanRunner / PlanStreamer (plan.go): ExecutePlan/OpenPlan evaluate a
//     pushed-down subplan — a pipeline of local operations fused by the
//     cost-based Query Optimizer — entirely inside the LQP, so only the
//     filtered, narrowed rows cross the federation boundary
//     (ExecutePlanOn/OpenPlanOn fall back to caller-side steps for LQPs
//     without it, and translate.Options.CanPush keeps the optimizer from
//     fusing against those in the first place);
//   - StatsProvider (plan.go): per-relation cardinalities, column lists
//     and keys, collected by internal/stats into the optimizer's cost
//     model.
//
// Counting (counting.go) wraps any LQP with operation/plan recording,
// simulated transfer metering (rows and cells delivered) and an injected
// per-batch wide-area latency — the measurement device of the federation
// benchmarks.
package lqp

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/rel"
	"repro/internal/relalg"
)

// OpKind enumerates the local operations an LQP accepts.
type OpKind uint8

const (
	// OpRetrieve fetches an entire local relation — "an LQP Restrict
	// operation without any restricting condition" (paper, §II).
	OpRetrieve OpKind = iota
	// OpSelect fetches the tuples satisfying Attr θ Const.
	OpSelect
	// OpRestrict fetches the tuples satisfying Attr θ Attr2.
	OpRestrict
	// OpProject fetches the named columns with duplicates eliminated.
	OpProject
)

// String returns the operation name as it appears in the paper's matrices.
func (k OpKind) String() string {
	switch k {
	case OpRetrieve:
		return "Retrieve"
	case OpSelect:
		return "Select"
	case OpRestrict:
		return "Restrict"
	case OpProject:
		return "Project"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// Op is one local operation. It is a flat, gob-encodable struct so the same
// representation serves the in-process and the networked LQP.
type Op struct {
	Kind     OpKind
	Relation string    // local scheme name, e.g. "ALUMNUS"
	Attr     string    // LHS attribute for Select/Restrict
	Theta    rel.Theta // comparison for Select/Restrict
	Const    rel.Value // RHS constant for Select
	Attr2    string    // RHS attribute for Restrict
	Attrs    []string  // projection list for Project
}

// Retrieve builds a Retrieve op.
func Retrieve(relation string) Op { return Op{Kind: OpRetrieve, Relation: relation} }

// Select builds a Select op.
func Select(relation, attr string, theta rel.Theta, constant rel.Value) Op {
	return Op{Kind: OpSelect, Relation: relation, Attr: attr, Theta: theta, Const: constant}
}

// Restrict builds a Restrict op.
func Restrict(relation, attr string, theta rel.Theta, attr2 string) Op {
	return Op{Kind: OpRestrict, Relation: relation, Attr: attr, Theta: theta, Attr2: attr2}
}

// Project builds a Project op.
func Project(relation string, attrs ...string) Op {
	return Op{Kind: OpProject, Relation: relation, Attrs: attrs}
}

// String renders the op in the paper's algebraic notation.
func (o Op) String() string {
	switch o.Kind {
	case OpRetrieve:
		return o.Relation
	case OpSelect:
		return fmt.Sprintf("%s[%s %s %q]", o.Relation, o.Attr, o.Theta, o.Const)
	case OpRestrict:
		return fmt.Sprintf("%s[%s %s %s]", o.Relation, o.Attr, o.Theta, o.Attr2)
	case OpProject:
		return fmt.Sprintf("%s%v", o.Relation, o.Attrs)
	default:
		return fmt.Sprintf("op(%d) on %s", uint8(o.Kind), o.Relation)
	}
}

// LQP is the interface the Polygen Query Processor programs against.
type LQP interface {
	// Name returns the local database name, used by the PQP as the
	// execution location and the originating source tag.
	Name() string
	// Relations lists the local scheme names available.
	Relations() ([]string, error)
	// Execute runs one local operation and returns the resulting relation.
	Execute(op Op) (*rel.Relation, error)
}

// Inserter is the optional mutation capability: an LQP that accepts writes.
// A nil return acknowledges the write — for a durable node (store.LQP) that
// promise extends across crashes per its fsync policy, for an in-memory one
// only across the process lifetime. The wire protocol exposes it as the
// "insert" request kind, which is deliberately excluded from the client's
// idle-retry: a write whose response was lost has an unknown outcome, and
// replaying it could double-apply.
type Inserter interface {
	Insert(relation string, tuples []rel.Tuple) error
}

// Local is an in-process LQP over a catalog.Database.
type Local struct {
	db *catalog.Database
}

// NewLocal wraps db as an LQP.
func NewLocal(db *catalog.Database) *Local { return &Local{db: db} }

// Name implements LQP.
func (l *Local) Name() string { return l.db.Name() }

// Relations implements LQP.
func (l *Local) Relations() ([]string, error) { return l.db.Relations(), nil }

// Insert implements Inserter (in-memory only: a restart loses the rows;
// store.LQP overrides this with the write-ahead-logged path).
func (l *Local) Insert(relation string, tuples []rel.Tuple) error {
	return l.db.Insert(relation, tuples...)
}

// Execute implements LQP.
func (l *Local) Execute(op Op) (*rel.Relation, error) {
	r, err := l.db.Snapshot(op.Relation)
	if err != nil {
		return nil, fmt.Errorf("lqp %s: %w", l.Name(), err)
	}
	switch op.Kind {
	case OpRetrieve:
		return r, nil
	case OpSelect:
		return relalg.Select(r, op.Attr, op.Theta, op.Const)
	case OpRestrict:
		return relalg.Restrict(r, op.Attr, op.Theta, op.Attr2)
	case OpProject:
		return relalg.Project(r, op.Attrs)
	default:
		return nil, fmt.Errorf("lqp %s: unsupported operation %v", l.Name(), op.Kind)
	}
}
