package lqp

import (
	"strings"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/rel"
)

func testDB() *catalog.Database {
	db := catalog.NewDatabase("AD")
	db.MustCreate("ALUMNUS", rel.SchemaOf("AID#", "ANAME", "DEG"), "AID#")
	for _, r := range [][3]string{
		{"012", "John McCauley", "MBA"},
		{"123", "Bob Swanson", "MBA"},
		{"345", "James Yao", "BS"},
	} {
		if err := db.Insert("ALUMNUS", rel.Tuple{rel.String(r[0]), rel.String(r[1]), rel.String(r[2])}); err != nil {
			panic(err)
		}
	}
	return db
}

func TestLocalName(t *testing.T) {
	l := NewLocal(testDB())
	if l.Name() != "AD" {
		t.Errorf("Name = %q", l.Name())
	}
}

func TestLocalRelations(t *testing.T) {
	l := NewLocal(testDB())
	rels, err := l.Relations()
	if err != nil || len(rels) != 1 || rels[0] != "ALUMNUS" {
		t.Errorf("Relations = %v, %v", rels, err)
	}
}

func TestLocalRetrieve(t *testing.T) {
	l := NewLocal(testDB())
	r, err := l.Execute(Retrieve("ALUMNUS"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Cardinality() != 3 {
		t.Errorf("retrieved %d tuples", r.Cardinality())
	}
	// The paper defines Retrieve as a Restrict without condition: full scan.
	if r.Schema.Len() != 3 {
		t.Errorf("degree = %d", r.Schema.Len())
	}
}

func TestLocalSelect(t *testing.T) {
	l := NewLocal(testDB())
	r, err := l.Execute(Select("ALUMNUS", "DEG", rel.ThetaEQ, rel.String("MBA")))
	if err != nil {
		t.Fatal(err)
	}
	if r.Cardinality() != 2 {
		t.Errorf("selected %d tuples, want 2", r.Cardinality())
	}
}

func TestLocalRestrict(t *testing.T) {
	db := catalog.NewDatabase("X")
	db.MustCreate("T", rel.SchemaOf("A", "B"))
	db.Insert("T", rel.Tuple{rel.Int(1), rel.Int(1)}, rel.Tuple{rel.Int(1), rel.Int(2)})
	l := NewLocal(db)
	r, err := l.Execute(Restrict("T", "A", rel.ThetaEQ, "B"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Cardinality() != 1 {
		t.Errorf("restricted to %d tuples, want 1", r.Cardinality())
	}
}

func TestLocalProject(t *testing.T) {
	l := NewLocal(testDB())
	r, err := l.Execute(Project("ALUMNUS", "DEG"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Cardinality() != 2 { // MBA, BS
		t.Errorf("projected %d tuples, want 2", r.Cardinality())
	}
}

func TestLocalErrors(t *testing.T) {
	l := NewLocal(testDB())
	if _, err := l.Execute(Retrieve("MISSING")); err == nil {
		t.Error("retrieving missing relation should fail")
	} else if !strings.Contains(err.Error(), "AD") {
		t.Errorf("error should name the LQP: %v", err)
	}
	if _, err := l.Execute(Select("ALUMNUS", "NOPE", rel.ThetaEQ, rel.String("x"))); err == nil {
		t.Error("selecting on missing attribute should fail")
	}
	if _, err := l.Execute(Op{Kind: OpKind(99), Relation: "ALUMNUS"}); err == nil {
		t.Error("unknown op kind should fail")
	}
}

func TestLocalSnapshotSemantics(t *testing.T) {
	db := testDB()
	l := NewLocal(db)
	r, _ := l.Execute(Retrieve("ALUMNUS"))
	r.Tuples[0][0] = rel.String("mutated")
	r2, _ := l.Execute(Retrieve("ALUMNUS"))
	if r2.Tuples[0][0].Str() == "mutated" {
		t.Error("Execute result aliases the catalog storage")
	}
}

func TestOpString(t *testing.T) {
	cases := []struct {
		op   Op
		want string
	}{
		{Retrieve("CAREER"), "CAREER"},
		{Select("ALUMNUS", "DEG", rel.ThetaEQ, rel.String("MBA")), `ALUMNUS[DEG = "MBA"]`},
		{Restrict("T", "A", rel.ThetaLT, "B"), "T[A < B]"},
		{Project("T", "A", "B"), "T[A B]"},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
	if OpRetrieve.String() != "Retrieve" || OpSelect.String() != "Select" ||
		OpRestrict.String() != "Restrict" || OpProject.String() != "Project" {
		t.Error("OpKind.String wrong")
	}
}

func TestCountingLatencyInjection(t *testing.T) {
	c := NewCounting(NewLocal(testDB()))
	c.Latency = 10 * time.Millisecond
	start := time.Now()
	if _, err := c.Execute(Retrieve("ALUMNUS")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Errorf("latency not injected: %v", elapsed)
	}
}
