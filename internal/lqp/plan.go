package lqp

import (
	"fmt"
	"strings"

	"repro/internal/rel"
	"repro/internal/relalg"
)

// Plan is a pushed-down local subplan: a pipeline of local operations
// evaluated entirely inside one LQP. Ops[0] is the base operation and names
// the local relation; every later op applies to the running result (its
// Relation field is ignored). The polygen Query Optimizer emits plans when
// it fuses PQP-resident Select/Restrict/Project rows into the local row
// that feeds them, so only the filtered, narrowed rows cross the wide-area
// boundary.
type Plan struct {
	Ops []Op
}

// PlanOf builds a plan from a base operation and trailing steps.
func PlanOf(base Op, steps ...Op) Plan {
	return Plan{Ops: append([]Op{base}, steps...)}
}

// Base returns the base operation (the first op).
func (p Plan) Base() Op {
	if len(p.Ops) == 0 {
		return Op{}
	}
	return p.Ops[0]
}

// Steps returns the pushed-down steps beyond the base operation.
func (p Plan) Steps() []Op {
	if len(p.Ops) <= 1 {
		return nil
	}
	return p.Ops[1:]
}

// Relation returns the base relation name.
func (p Plan) Relation() string { return p.Base().Relation }

// Validate checks the plan shape: a non-empty pipeline whose base op names
// a relation.
func (p Plan) Validate() error {
	if len(p.Ops) == 0 {
		return fmt.Errorf("lqp: empty plan")
	}
	if p.Ops[0].Relation == "" {
		return fmt.Errorf("lqp: plan base op names no relation")
	}
	return nil
}

// Mediates reports whether any pushed step beyond the base operation is a
// Select or Restrict. The PQP needs this to reconstruct the paper's
// intermediate tags exactly: a PQP-resident Select/Restrict adds the operand
// cells' origin — which for a freshly retrieved relation is uniformly the
// executing LQP — to every cell's intermediate set, so a fused filter step
// must reintroduce {LQP} when the result is tagged. The base operation does
// not mediate: pass one of the interpreter already executes it locally, and
// Tables 4–9 tag its result with empty intermediate sets.
func (p Plan) Mediates() bool {
	for _, op := range p.Steps() {
		if op.Kind == OpSelect || op.Kind == OpRestrict {
			return true
		}
	}
	return false
}

// String renders the pipeline in the paper's algebraic notation, e.g.
// ALUMNUS[DEG = "MBA"][SAL > 50000][ANAME, DEG].
func (p Plan) String() string {
	if len(p.Ops) == 0 {
		return "(empty plan)"
	}
	return p.Ops[0].String() + StepsString(p.Steps())
}

// StepsString renders a sequence of pipeline steps as chained bracket
// suffixes — each op's bracket part with the relation name stripped.
// Shared by Plan.String and the translate matrix renderer, so fused rows
// and pushed plans print identically.
func StepsString(steps []Op) string {
	var b strings.Builder
	for _, op := range steps {
		s := op.String()
		if i := strings.IndexByte(s, '['); i >= 0 {
			s = s[i:]
		} else {
			s = "[" + s + "]"
		}
		b.WriteString(s)
	}
	return b.String()
}

// PlanRunner is the pushdown capability of an LQP: it evaluates a whole
// local subplan and returns only the final, filtered relation. Local and
// wire.Client implement it; LQPs without it make the optimizer keep the
// fused operations PQP-side (the translator's CanPush hook).
type PlanRunner interface {
	// ExecutePlan evaluates the pipeline and returns the materialized result.
	ExecutePlan(p Plan) (*rel.Relation, error)
}

// PlanStreamer is the streaming flavor of the pushdown capability: the
// subplan's result arrives as a cursor of row batches, so wide-area transfer
// is charged only for rows that survive the pushed filters.
type PlanStreamer interface {
	OpenPlan(p Plan) (rel.Cursor, error)
}

// CanPush reports whether l accepts pushed-down subplans.
func CanPush(l LQP) bool {
	_, ok := l.(PlanRunner)
	return ok
}

// ApplyOp evaluates one local operation against an already-materialized
// relation with the untagged relational algebra — the shared evaluation of
// plan steps in Local, wire.Server, and the PQP-side fallback.
func ApplyOp(r *rel.Relation, op Op) (*rel.Relation, error) {
	switch op.Kind {
	case OpRetrieve:
		return r, nil
	case OpSelect:
		return relalg.Select(r, op.Attr, op.Theta, op.Const)
	case OpRestrict:
		return relalg.Restrict(r, op.Attr, op.Theta, op.Attr2)
	case OpProject:
		return relalg.Project(r, op.Attrs)
	default:
		return nil, fmt.Errorf("lqp: unsupported plan step %v", op.Kind)
	}
}

// ExecutePlanOn evaluates a plan against any LQP: PlanRunners evaluate it
// natively; for the rest the base operation executes remotely and the steps
// apply PQP-side — the answer is identical, only the transfer savings are
// lost. (The optimizer never fuses steps for LQPs without the capability;
// the fallback keeps hand-built plans executable.)
func ExecutePlanOn(l LQP, p Plan) (*rel.Relation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if pr, ok := l.(PlanRunner); ok {
		return pr.ExecutePlan(p)
	}
	r, err := l.Execute(p.Base())
	if err != nil {
		return nil, err
	}
	return applySteps(r, p.Steps())
}

// OpenPlanOn opens a plan as a streaming cursor against any LQP, with the
// same capability-or-fallback behavior as ExecutePlanOn.
func OpenPlanOn(l LQP, p Plan) (rel.Cursor, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if ps, ok := l.(PlanStreamer); ok {
		return ps.OpenPlan(p)
	}
	r, err := ExecutePlanOn(l, p)
	if err != nil {
		return nil, err
	}
	return rel.CursorOf(r), nil
}

func applySteps(r *rel.Relation, steps []Op) (*rel.Relation, error) {
	var err error
	for _, op := range steps {
		if r, err = ApplyOp(r, op); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// ExecutePlan implements PlanRunner: one snapshot of the base relation, then
// the pipeline folds in-process.
func (l *Local) ExecutePlan(p Plan) (*rel.Relation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	r, err := l.Execute(p.Base())
	if err != nil {
		return nil, err
	}
	return applySteps(r, p.Steps())
}

// OpenPlan implements PlanStreamer. Select and Restrict steps compose as
// filter cursors over the base stream — fully pipelined, no copy; a Project
// step is a blocking point (duplicate elimination), so the prefix up to it
// materializes and the remainder streams off the projected result.
func (l *Local) OpenPlan(p Plan) (rel.Cursor, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cur, err := l.Open(p.Base())
	if err != nil {
		return nil, err
	}
	for i, op := range p.Steps() {
		switch op.Kind {
		case OpSelect, OpRestrict:
			cur, err = filterStep(cur, op)
		case OpProject:
			// Blocking: drain what we have, project, stream the rest of the
			// pipeline off the materialized result.
			var r *rel.Relation
			if r, err = rel.Drain(cur); err == nil {
				if r, err = applySteps(r, p.Steps()[i:]); err == nil {
					return rel.CursorOf(r), nil
				}
			}
		default:
			cur.Close()
			return nil, fmt.Errorf("lqp %s: unsupported plan step %v", l.Name(), op.Kind)
		}
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

// filterStep wraps cur with one Select/Restrict predicate.
func filterStep(cur rel.Cursor, op Op) (rel.Cursor, error) {
	schema := cur.Schema()
	ci := schema.Index(op.Attr)
	if ci < 0 {
		cur.Close()
		return nil, fmt.Errorf("lqp: no attribute %q in pushed plan step", op.Attr)
	}
	if op.Kind == OpSelect {
		theta, constant := op.Theta, op.Const
		return rel.FilterCursor(cur, func(t rel.Tuple) bool {
			return theta.Eval(t[ci], constant)
		}), nil
	}
	yi := schema.Index(op.Attr2)
	if yi < 0 {
		cur.Close()
		return nil, fmt.Errorf("lqp: no attribute %q in pushed plan step", op.Attr2)
	}
	theta := op.Theta
	return rel.FilterCursor(cur, func(t rel.Tuple) bool {
		return theta.Eval(t[ci], t[yi])
	}), nil
}

// RelationStats summarizes one local relation for the federated optimizer:
// cardinality drives join ordering, the column list drives projection
// narrowing and plan simulation.
type RelationStats struct {
	Name    string
	Rows    int
	Columns []string
	Key     []string
}

// StatsProvider is the statistics capability of an LQP: per-relation
// cardinalities and column lists, collected by internal/stats into the
// cost-based optimizer's catalog. Local and wire.Client implement it.
type StatsProvider interface {
	Stats() ([]RelationStats, error)
}

// Stats implements StatsProvider from the catalog's metadata.
func (l *Local) Stats() ([]RelationStats, error) {
	infos := l.db.Stats()
	out := make([]RelationStats, len(infos))
	for i, in := range infos {
		out[i] = RelationStats{Name: in.Name, Rows: in.Rows, Columns: in.Columns, Key: in.Key}
	}
	return out, nil
}

// StatsOf collects relation statistics from any LQP, or reports that the
// LQP does not expose them.
func StatsOf(l LQP) ([]RelationStats, bool, error) {
	sp, ok := l.(StatsProvider)
	if !ok {
		return nil, false, nil
	}
	st, err := sp.Stats()
	return st, true, err
}

var (
	_ PlanRunner    = (*Local)(nil)
	_ PlanStreamer  = (*Local)(nil)
	_ StatsProvider = (*Local)(nil)
)
