package lqp

import (
	"io"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/rel"
)

func planDB(t *testing.T) *catalog.Database {
	t.Helper()
	db := catalog.NewDatabase("XD")
	db.MustCreate("T", rel.SchemaOf("K", "C", "V"), "K")
	rows := make([]rel.Tuple, 0, 600)
	for i := 0; i < 600; i++ {
		cat := "a"
		if i%3 == 0 {
			cat = "b"
		}
		rows = append(rows, rel.Tuple{rel.Int(int64(i)), rel.String(cat), rel.Int(int64(i * 2))})
	}
	if err := db.Insert("T", rows...); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPlanValidateAndString(t *testing.T) {
	p := PlanOf(Retrieve("T"), Select("T", "C", rel.ThetaEQ, rel.String("b")), Project("T", "V"))
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.String(); got != `T[C = "b"][V]` {
		t.Errorf("plan renders %q", got)
	}
	if !p.Mediates() {
		t.Error("plan with a pushed Select must mediate")
	}
	if PlanOf(Select("T", "C", rel.ThetaEQ, rel.String("b")), Project("T", "V")).Mediates() {
		t.Error("base Select must not mediate (only pushed steps do)")
	}
	if err := (Plan{}).Validate(); err == nil {
		t.Error("empty plan accepted")
	}
	if err := (Plan{Ops: []Op{{Kind: OpRetrieve}}}).Validate(); err == nil {
		t.Error("plan without a base relation accepted")
	}
}

// TestLocalExecutePlanMatchesStepwise: the fused pipeline equals the
// step-by-step composition, materialized and streamed.
func TestLocalExecutePlanMatchesStepwise(t *testing.T) {
	l := NewLocal(planDB(t))
	p := PlanOf(Retrieve("T"), Select("T", "C", rel.ThetaEQ, rel.String("b")), Project("T", "V"))

	want, err := l.Execute(Retrieve("T"))
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range p.Steps() {
		if want, err = ApplyOp(want, op); err != nil {
			t.Fatal(err)
		}
	}
	got, err := l.ExecutePlan(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema.String() != want.Schema.String() || len(got.Tuples) != len(want.Tuples) {
		t.Fatalf("plan result %s×%d, want %s×%d", got.Schema, len(got.Tuples), want.Schema, len(want.Tuples))
	}
	for i := range want.Tuples {
		if !got.Tuples[i].Identical(want.Tuples[i]) {
			t.Fatalf("row %d differs: %v vs %v", i, got.Tuples[i], want.Tuples[i])
		}
	}

	cur, err := l.OpenPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := rel.Drain(cur)
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed.Tuples) != len(want.Tuples) {
		t.Fatalf("streamed %d rows, want %d", len(streamed.Tuples), len(want.Tuples))
	}
}

// TestOpenPlanFilterOnlyStreams: a filter-only plan streams without
// materializing (cursor yields multiple batches).
func TestOpenPlanFilterOnlyStreams(t *testing.T) {
	l := NewLocal(planDB(t))
	cur, err := l.OpenPlan(PlanOf(Retrieve("T"), Select("T", "C", rel.ThetaEQ, rel.String("a"))))
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	rows := 0
	for {
		batch, err := cur.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		rows += len(batch)
	}
	if rows != 400 {
		t.Errorf("filtered stream yielded %d rows, want 400", rows)
	}
}

// bareLQP implements only the core LQP interface.
type bareLQP struct{ inner *Local }

func (b bareLQP) Name() string                         { return b.inner.Name() }
func (b bareLQP) Relations() ([]string, error)         { return b.inner.Relations() }
func (b bareLQP) Execute(op Op) (*rel.Relation, error) { return b.inner.Execute(op) }

// TestExecutePlanOnFallback: a capability-less LQP still answers plans —
// the base op runs remotely, the steps apply caller-side.
func TestExecutePlanOnFallback(t *testing.T) {
	bare := bareLQP{inner: NewLocal(planDB(t))}
	if CanPush(bare) {
		t.Fatal("bare LQP claims the pushdown capability")
	}
	p := PlanOf(Retrieve("T"), Select("T", "C", rel.ThetaEQ, rel.String("b")))
	r, err := ExecutePlanOn(bare, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tuples) != 200 {
		t.Errorf("fallback plan yielded %d rows, want 200", len(r.Tuples))
	}
	cur, err := OpenPlanOn(bare, p)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := rel.Drain(cur)
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed.Tuples) != 200 {
		t.Errorf("fallback stream yielded %d rows, want 200", len(streamed.Tuples))
	}
}

// TestCountingMetersFilteredTransfer: Counting charges transfer (cells,
// rows, latency batches) for the rows a pushed plan actually returns, not
// for the base relation.
func TestCountingMetersFilteredTransfer(t *testing.T) {
	c := NewCounting(NewLocal(planDB(t)))
	full, err := c.Execute(Retrieve("T"))
	if err != nil {
		t.Fatal(err)
	}
	if got := c.CellsTransferred(); got != int64(len(full.Tuples)*3) {
		t.Errorf("retrieve transferred %d cells, want %d", got, len(full.Tuples)*3)
	}
	c.Reset()

	p := PlanOf(Retrieve("T"), Select("T", "C", rel.ThetaEQ, rel.String("b")), Project("T", "V"))
	r, err := c.ExecutePlan(p)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := c.CellsTransferred(), int64(len(r.Tuples)); got != want {
		t.Errorf("pushed plan transferred %d cells, want %d (filtered rows × 1 column)", got, want)
	}
	if got := c.RowsTransferred(); got != int64(len(r.Tuples)) {
		t.Errorf("pushed plan transferred %d rows, want %d", got, len(r.Tuples))
	}
	if plans := c.Plans(); len(plans) != 1 || len(plans[0].Steps()) != 2 {
		t.Errorf("recorded plans = %v", plans)
	}
	// The base op of the plan still counts as one operation.
	if c.Total() != 1 || c.Count(OpRetrieve) != 1 {
		t.Errorf("op counts: total=%d retrieve=%d", c.Total(), c.Count(OpRetrieve))
	}

	// Streaming path: the metered cursor books each filtered batch.
	c.Reset()
	cur, err := c.OpenPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := rel.Drain(cur)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := c.CellsTransferred(), int64(len(streamed.Tuples)); got != want {
		t.Errorf("streamed pushed plan transferred %d cells, want %d", got, want)
	}
}

// TestCountingLatencyPerFilteredBatch: with injected latency, a pushed plan
// whose result fits one batch pays one latency unit; a wholesale retrieve
// of the same relation pays one per batch of the full relation.
func TestCountingLatencyPerFilteredBatch(t *testing.T) {
	c := NewCounting(NewLocal(planDB(t)))
	c.Latency = 2 * time.Millisecond

	start := time.Now()
	// 200 matching rows -> 1 batch (DefaultBatchSize 256).
	if _, err := c.ExecutePlan(PlanOf(Retrieve("T"), Select("T", "C", rel.ThetaEQ, rel.String("b")), Project("T", "K"))); err != nil {
		t.Fatal(err)
	}
	filtered := time.Since(start)

	start = time.Now()
	// 600 rows -> 3 batches.
	if _, err := c.Execute(Retrieve("T")); err != nil {
		t.Fatal(err)
	}
	wholesale := time.Since(start)

	if filtered >= wholesale {
		t.Errorf("filtered transfer (%v) should cost less injected latency than wholesale (%v)", filtered, wholesale)
	}
}

func TestCountingForwardsStats(t *testing.T) {
	c := NewCounting(NewLocal(planDB(t)))
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(st) != 1 || st[0].Name != "T" || st[0].Rows != 600 || len(st[0].Columns) != 3 {
		t.Errorf("stats = %+v", st)
	}
}
