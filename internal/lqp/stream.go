package lqp

import (
	"fmt"

	"repro/internal/rel"
	"repro/internal/relalg"
)

// Streamer is the optional streaming capability of an LQP: Open evaluates a
// local operation and returns its result as a cursor of row batches instead
// of one materialized relation, so the PQP can overlap retrieval with
// operator work and bound its memory by batches in flight. Local and
// wire.Client implement it; OpenLQP adapts LQPs that do not.
type Streamer interface {
	// Open evaluates op and returns a cursor over the result. The batches
	// obey the rel.Cursor contract (immutable, valid across Next calls);
	// they may alias live base-relation storage, so callers must copy any
	// tuple they intend to modify. Cursors that can also yield batches in
	// column-major form implement rel.ColCursor (Local's retrieval cursors
	// and wire.Client's binary-codec streams do); consumers that want
	// column vectors — the wire server's binary frames, the PQP's tagging
	// scan — type-assert for it and fall back to row batches.
	Open(op Op) (rel.Cursor, error)
}

// OpenLQP opens a streaming cursor on any LQP: Streamers stream natively;
// for the rest the operation is executed materialized and the result re-cut
// into batches, so callers program against cursors uniformly.
func OpenLQP(l LQP, op Op) (rel.Cursor, error) {
	if s, ok := l.(Streamer); ok {
		return s.Open(op)
	}
	r, err := l.Execute(op)
	if err != nil {
		return nil, err
	}
	return rel.CursorOf(r), nil
}

// Open implements Streamer. Retrieve, Select and Restrict stream straight
// off the base relation — no per-tuple copy, one batch in flight; Project
// eliminates duplicates (a blocking step whose memory is bounded by the
// projected output) and streams the result.
func (l *Local) Open(op Op) (rel.Cursor, error) {
	schema, tuples, err := l.db.View(op.Relation)
	if err != nil {
		return nil, fmt.Errorf("lqp %s: %w", l.Name(), err)
	}
	// base is a read-only view of the live relation; the relalg operators
	// and the cursors below never mutate input tuples.
	base := &rel.Relation{Name: op.Relation, Schema: schema, Tuples: tuples}
	switch op.Kind {
	case OpRetrieve:
		return rel.CursorOf(base), nil
	case OpSelect:
		ci, err := base.Col(op.Attr)
		if err != nil {
			return nil, err
		}
		theta, constant := op.Theta, op.Const
		return rel.FilterCursor(rel.CursorOf(base), func(t rel.Tuple) bool {
			return theta.Eval(t[ci], constant)
		}), nil
	case OpRestrict:
		xi, err := base.Col(op.Attr)
		if err != nil {
			return nil, err
		}
		yi, err := base.Col(op.Attr2)
		if err != nil {
			return nil, err
		}
		theta := op.Theta
		return rel.FilterCursor(rel.CursorOf(base), func(t rel.Tuple) bool {
			return theta.Eval(t[xi], t[yi])
		}), nil
	case OpProject:
		r, err := relalg.Project(base, op.Attrs)
		if err != nil {
			return nil, err
		}
		return rel.CursorOf(r), nil
	default:
		return nil, fmt.Errorf("lqp %s: unsupported operation %v", l.Name(), op.Kind)
	}
}

var _ Streamer = (*Local)(nil)
