package lqp

import (
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/rel"
)

// bigDB builds a database whose relation spans several default batches.
func bigDB(n int) *catalog.Database {
	db := catalog.NewDatabase("BD")
	db.MustCreate("T", rel.SchemaOf("K", "V"))
	for i := 0; i < n; i++ {
		if err := db.Insert("T", rel.Tuple{rel.Int(int64(i)), rel.String(strings.Repeat("v", 1+i%3))}); err != nil {
			panic(err)
		}
	}
	return db
}

func renderPlain(r *rel.Relation) []string {
	out := make([]string, 0, len(r.Tuples))
	for _, t := range r.Tuples {
		parts := make([]string, len(t))
		for i, v := range t {
			parts[i] = v.Key()
		}
		out = append(out, strings.Join(parts, "|"))
	}
	sort.Strings(out)
	return out
}

// TestLocalOpenMatchesExecute: for every op kind, the streamed result
// equals the materialized one row for row.
func TestLocalOpenMatchesExecute(t *testing.T) {
	l := NewLocal(bigDB(700))
	ops := []Op{
		Retrieve("T"),
		Select("T", "K", rel.ThetaLT, rel.Int(500)),
		Restrict("T", "K", rel.ThetaNE, "V"),
		Project("T", "V"),
	}
	for _, op := range ops {
		mat, err := l.Execute(op)
		if err != nil {
			t.Fatalf("%v: execute: %v", op, err)
		}
		cur, err := l.Open(op)
		if err != nil {
			t.Fatalf("%v: open: %v", op, err)
		}
		got, err := rel.Drain(cur)
		if err != nil {
			t.Fatalf("%v: drain: %v", op, err)
		}
		if !got.Schema.Equal(mat.Schema) {
			t.Fatalf("%v: schema %s, want %s", op, got.Schema, mat.Schema)
		}
		a, b := renderPlain(got), renderPlain(mat)
		if strings.Join(a, "\n") != strings.Join(b, "\n") {
			t.Fatalf("%v: streamed result diverged from materialized (%d vs %d rows)", op, len(a), len(b))
		}
	}
}

// TestLocalOpenErrors: unknown relations, attributes and op kinds fail at
// Open time, not mid-stream.
func TestLocalOpenErrors(t *testing.T) {
	l := NewLocal(bigDB(10))
	for _, op := range []Op{
		Retrieve("MISSING"),
		Select("T", "NOPE", rel.ThetaEQ, rel.Int(1)),
		Restrict("T", "K", rel.ThetaEQ, "NOPE"),
		Project("T", "NOPE"),
		{Kind: OpKind(99), Relation: "T"},
	} {
		if _, err := l.Open(op); err == nil {
			t.Errorf("%v: error expected", op)
		}
	}
}

// TestOpenLQPFallback: an LQP without the Streamer capability still opens,
// through the materialize-then-cut adapter.
type plainLQP struct{ inner *Local }

func (p *plainLQP) Name() string                         { return p.inner.Name() }
func (p *plainLQP) Relations() ([]string, error)         { return p.inner.Relations() }
func (p *plainLQP) Execute(op Op) (*rel.Relation, error) { return p.inner.Execute(op) }

func TestOpenLQPFallback(t *testing.T) {
	p := &plainLQP{inner: NewLocal(bigDB(600))}
	cur, err := OpenLQP(p, Retrieve("T"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := rel.Drain(cur)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cardinality() != 600 {
		t.Fatalf("fallback drained %d tuples, want 600", got.Cardinality())
	}
}

// TestCountingLatencyPerBatch: a relation spanning b batches charges
// b × Latency on the materializing path, and one Latency per Next on the
// streaming path.
func TestCountingLatencyPerBatch(t *testing.T) {
	const latency = 30 * time.Millisecond
	n := rel.DefaultBatchSize*2 + 10 // 3 batches
	c := NewCounting(NewLocal(bigDB(n)))
	c.Latency = latency

	start := time.Now()
	r, err := c.Execute(Retrieve("T"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Cardinality() != n {
		t.Fatalf("retrieved %d tuples, want %d", r.Cardinality(), n)
	}
	if elapsed := time.Since(start); elapsed < 3*latency {
		t.Errorf("materializing retrieve of 3 batches took %v, want >= %v", elapsed, 3*latency)
	}

	cur, err := c.Open(Retrieve("T"))
	if err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	if _, err := cur.Next(); err != nil {
		t.Fatal(err)
	}
	first := time.Since(start)
	if first < latency {
		t.Errorf("first batch arrived in %v, want >= %v", first, latency)
	}
	// Generous upper bound: one batch latency plus scheduling slack, well
	// under the 3-batch whole-transfer time.
	if first >= 3*latency-latency/2 {
		t.Errorf("first batch took %v; streaming should pay one batch latency, not the whole transfer", first)
	}
	if _, err := rel.Drain(cur); err != nil {
		t.Fatal(err)
	}
	if c.Total() != 2 || c.Count(OpRetrieve) != 2 {
		t.Errorf("ops recorded = %d (%d retrieves), want 2", c.Total(), c.Count(OpRetrieve))
	}
}
