// Package stats maintains the per-LQP statistics that drive the cost-based
// federated query optimizer: relation cardinalities and column lists
// (collected through the lqp.StatsProvider capability) and observed
// wide-area link latencies (exponentially-weighted moving averages fed by
// the PQP as it executes local operations, or seeded by benchmarks that
// model known links).
//
// The paper's Query Optimizer box (Figure 2) is declared "beyond the
// scope"; this package supplies the minimum a federation needs for the
// decisions that dominate wide-area cost. The optimizer's rewrites are
// gated on the cardinalities and column lists (projection-narrowing width
// checks, the key-aware join-order cost model); the latency averages are
// the catalog's observability arm — TransferCost turns them into the
// estimated wide-area cost of a planned transfer, which the B-OPT harness
// and operators read, mirroring the batch-charging model of lqp.Counting.
// The catalog is deliberately approximate — stale counts only cost plan
// quality, never correctness, because every rewrite the optimizer performs
// is independently proven identity-preserving.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lqp"
)

// DefaultFilterSelectivity is the fraction of rows assumed to survive a
// Select or Restrict when no better estimate exists — the classic 1/3 of
// System R's descendants. It only influences cost ranking, never results.
const DefaultFilterSelectivity = 1.0 / 3

// Key identifies one local relation of one local database.
type Key struct {
	DB       string
	Relation string
}

// Relation is the collected statistics of one local relation.
type Relation struct {
	// Rows is the cardinality at collection time.
	Rows int
	// Columns lists the attribute names in schema order.
	Columns []string
	// Key lists the primary key attributes (empty when undeclared).
	Key []string
}

// Catalog is a concurrency-safe store of relation and link statistics. One
// catalog serves one federation; the PQP carries it across queries so
// estimates warm up once.
type Catalog struct {
	// id identifies this catalog instance, drawn from a process-wide
	// monotonic counter: catalog identity in a plan-cache key must not be
	// an address (a freed catalog's slot can be reused by its successor).
	id uint64
	// version counts plan-relevant catalog changes: relation statistics
	// being set or replaced, cardinalities that actually move, and pinned
	// latencies. The PQP's plan cache keys optimized plans on it, so a
	// collection pass or a real cardinality shift re-plans while steady-state
	// execution — whose per-operation latency observations only nudge the
	// EWMA — keeps hitting cached plans. Accessed atomically.
	version atomic.Uint64

	mu     sync.RWMutex
	rels   map[Key]Relation
	lat    map[string]time.Duration
	faults map[string]*FaultCounters
}

// nextCatalogID hands out process-unique catalog IDs.
var nextCatalogID atomic.Uint64

// ID returns the catalog's process-unique instance identifier. Two
// catalogs never share an ID, even when one is allocated after the other
// is garbage: plans cached against a replaced catalog can therefore never
// be mistaken for plans against its successor.
func (c *Catalog) ID() uint64 { return c.id }

// Version returns the catalog's plan-relevant change counter. Two calls
// returning the same value bracket a window in which no statistics change
// that could alter an optimizer decision was recorded.
func (c *Catalog) Version() uint64 { return c.version.Load() }

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		id:   nextCatalogID.Add(1),
		rels: make(map[Key]Relation),
		lat:  make(map[string]time.Duration),
	}
}

// SetRelation records (or replaces) the statistics of db's relation.
func (c *Catalog) SetRelation(db string, rs lqp.RelationStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rels[Key{DB: db, Relation: rs.Name}] = Relation{
		Rows:    rs.Rows,
		Columns: append([]string(nil), rs.Columns...),
		Key:     append([]string(nil), rs.Key...),
	}
	c.version.Add(1)
}

// Relation returns the statistics of db's relation.
func (c *Catalog) Relation(db, relation string) (Relation, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	r, ok := c.rels[Key{DB: db, Relation: relation}]
	return r, ok
}

// Cardinality returns the recorded row count of db's relation.
func (c *Catalog) Cardinality(db, relation string) (int, bool) {
	r, ok := c.Relation(db, relation)
	return r.Rows, ok
}

// Columns returns the recorded column list of db's relation. An entry
// whose columns were never collected (e.g. created by ObserveCardinality
// alone) reads as unknown, so cardinality observations can only improve
// plans, never disable column-dependent rewrites.
func (c *Catalog) Columns(db, relation string) ([]string, bool) {
	r, ok := c.Relation(db, relation)
	if !ok || len(r.Columns) == 0 {
		return nil, false
	}
	return r.Columns, true
}

// ObserveCardinality folds a freshly observed row count into the catalog —
// the PQP calls it with the result size of every local operation it routes,
// so estimates track reality without a collection pass. Only full Retrieves
// carry exact cardinalities; filtered observations update nothing.
func (c *Catalog) ObserveCardinality(db, relation string, rows int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := Key{DB: db, Relation: relation}
	r, known := c.rels[k]
	if known && r.Rows == rows {
		return // nothing moved; cached plans stay valid
	}
	r.Rows = rows
	c.rels[k] = r
	c.version.Add(1)
}

// latencyAlpha is the EWMA weight of a fresh latency observation.
const latencyAlpha = 0.25

// ObserveLatency folds one measured round-trip (or per-batch transfer) time
// into db's moving average. It deliberately does not bump Version: the PQP
// observes latency on every local operation it routes, so counting EWMA
// drift as a plan-relevant change would invalidate the plan cache on every
// query. Latency only tilts cost ranking, never correctness; SetLatency —
// the deliberate re-model — does bump.
func (c *Catalog) ObserveLatency(db string, d time.Duration) {
	if d < 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	prev, ok := c.lat[db]
	if !ok {
		c.lat[db] = d
		return
	}
	c.lat[db] = time.Duration(latencyAlpha*float64(d) + (1-latencyAlpha)*float64(prev))
}

// SetLatency pins db's link latency — benchmarks use it to model known
// wide-area links instead of waiting for the average to converge.
func (c *Catalog) SetLatency(db string, d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lat[db] = d
	c.version.Add(1)
}

// Latency returns db's current link latency estimate.
func (c *Catalog) Latency(db string) (time.Duration, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, ok := c.lat[db]
	return d, ok
}

// Latencies returns a copy of every link latency estimate, keyed by local
// database name, taken under one lock acquisition — a consistent snapshot
// for the V$SOURCE_STATS virtual table and the /metrics endpoint.
func (c *Catalog) Latencies() map[string]time.Duration {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]time.Duration, len(c.lat))
	for db, d := range c.lat {
		out[db] = d
	}
	return out
}

// TransferCost estimates the wide-area cost of shipping rows result rows
// from db: batches × link latency, mirroring lqp.Counting's streaming
// transfer model. Unknown links cost zero latency (in-process LQPs).
func (c *Catalog) TransferCost(db string, rows, batchSize int) time.Duration {
	lat, ok := c.Latency(db)
	if !ok || batchSize <= 0 {
		return 0
	}
	batches := 1
	if n := (rows + batchSize - 1) / batchSize; n > 1 {
		batches = n
	}
	return time.Duration(batches) * lat
}

// Collect probes every LQP exposing the lqp.StatsProvider capability and
// returns a fresh catalog. The probe round-trip time seeds each LQP's
// latency estimate. LQPs without the capability simply contribute nothing;
// a probe error aborts the collection.
func Collect(lqps map[string]lqp.LQP) (*Catalog, error) {
	c := NewCatalog()
	for db, l := range lqps {
		start := time.Now()
		st, ok, err := lqp.StatsOf(l)
		if err != nil {
			return nil, fmt.Errorf("stats: collecting from %s: %w", db, err)
		}
		if !ok {
			continue
		}
		c.ObserveLatency(db, time.Since(start))
		for _, rs := range st {
			c.SetRelation(db, rs)
		}
	}
	return c, nil
}

// String dumps the catalog deterministically, for tracing and tests.
func (c *Catalog) String() string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	keys := make([]Key, 0, len(c.rels))
	for k := range c.rels {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].DB != keys[j].DB {
			return keys[i].DB < keys[j].DB
		}
		return keys[i].Relation < keys[j].Relation
	})
	var b strings.Builder
	for _, k := range keys {
		r := c.rels[k]
		fmt.Fprintf(&b, "%s.%s: %d rows (%s)\n", k.DB, k.Relation, r.Rows, strings.Join(r.Columns, ", "))
	}
	dbs := make([]string, 0, len(c.lat))
	for db := range c.lat {
		dbs = append(dbs, db)
	}
	sort.Strings(dbs)
	for _, db := range dbs {
		fmt.Fprintf(&b, "%s: latency %v\n", db, c.lat[db])
	}
	return b.String()
}
