package stats

// This file is the fault-tolerance arm of the statistics catalog: a
// per-endpoint latency estimator rich enough to place hedged requests (an
// EWMA of the mean plus an EWMA of the absolute deviation, giving a cheap
// p95 estimate without histograms), and per-source counters of errors,
// retries and hedges — the raw material of a query's Diagnostics and of the
// B-FAULT benchmarks.

import (
	"sync"
	"time"
)

// Estimator tracks one endpoint's call latency as two EWMAs: the mean and
// the mean absolute deviation. P95 derives a tail estimate from them —
// mean + 3×deviation, the classic TCP RTO shape (Jacobson/Karels), which
// overshoots a normal distribution's p95 slightly and that is the right
// side to err on for hedging: a hedge fired late wastes less than a hedge
// fired into the common case. Safe for concurrent use.
type Estimator struct {
	mu   sync.Mutex
	n    int64
	mean float64 // nanoseconds
	dev  float64 // mean absolute deviation, nanoseconds
}

// estimatorAlpha weighs a fresh observation into both EWMAs.
const estimatorAlpha = 0.25

// Observe folds one measured call latency in.
func (e *Estimator) Observe(d time.Duration) {
	if d < 0 {
		return
	}
	x := float64(d)
	e.mu.Lock()
	defer e.mu.Unlock()
	e.n++
	if e.n == 1 {
		e.mean = x
		e.dev = x / 2
		return
	}
	diff := x - e.mean
	if diff < 0 {
		diff = -diff
	}
	e.mean += estimatorAlpha * (x - e.mean)
	e.dev += estimatorAlpha * (diff - e.dev)
}

// Count returns how many latencies have been observed.
func (e *Estimator) Count() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.n
}

// Mean returns the EWMA mean latency (0 before any observation).
func (e *Estimator) Mean() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return time.Duration(e.mean)
}

// P95 returns the tail-latency estimate mean + 3×deviation, or 0 before
// any observation — callers fall back to a configured delay until the
// estimator has seen traffic.
func (e *Estimator) P95() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.n == 0 {
		return 0
	}
	return time.Duration(e.mean + 3*e.dev)
}

// FaultCounters is one source's cumulative fault-handling activity.
type FaultCounters struct {
	// Errors counts failed replica calls (transport errors, injected
	// faults, blown per-call deadlines).
	Errors int64
	// Retries counts calls re-issued after a failure (failover to another
	// replica included).
	Retries int64
	// Hedges counts hedged requests actually launched.
	Hedges int64
}

// ObserveError books one failed replica call against db. Fault counters
// never bump the catalog Version: they tilt no optimizer decision.
func (c *Catalog) ObserveError(db string) { c.bumpFault(db, func(f *FaultCounters) { f.Errors++ }) }

// ObserveRetry books one retried (or failed-over) call against db.
func (c *Catalog) ObserveRetry(db string) { c.bumpFault(db, func(f *FaultCounters) { f.Retries++ }) }

// ObserveHedge books one launched hedge against db.
func (c *Catalog) ObserveHedge(db string) { c.bumpFault(db, func(f *FaultCounters) { f.Hedges++ }) }

func (c *Catalog) bumpFault(db string, f func(*FaultCounters)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.faults == nil {
		c.faults = make(map[string]*FaultCounters)
	}
	fc := c.faults[db]
	if fc == nil {
		fc = &FaultCounters{}
		c.faults[db] = fc
	}
	f(fc)
}

// Faults returns db's cumulative fault counters (zero value when the
// source has never faulted).
func (c *Catalog) Faults(db string) FaultCounters {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if fc, ok := c.faults[db]; ok {
		return *fc
	}
	return FaultCounters{}
}

// AllFaults returns a copy of every source's fault counters, keyed by local
// database name, taken under one lock acquisition. Sources that have never
// faulted are absent; callers wanting zero rows for them merge in the
// federation's source list. The V$FAULT virtual table and the /metrics
// endpoint read the catalog through this snapshot.
func (c *Catalog) AllFaults() map[string]FaultCounters {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]FaultCounters, len(c.faults))
	for db, fc := range c.faults {
		out[db] = *fc
	}
	return out
}
