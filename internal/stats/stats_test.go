package stats

import (
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/lqp"
	"repro/internal/rel"
)

func TestCatalogRelationAndLatency(t *testing.T) {
	c := NewCatalog()
	c.SetRelation("AD", lqp.RelationStats{Name: "ALUMNUS", Rows: 8, Columns: []string{"AID#", "ANAME"}, Key: []string{"AID#"}})
	if n, ok := c.Cardinality("AD", "ALUMNUS"); !ok || n != 8 {
		t.Errorf("cardinality = %d, %v", n, ok)
	}
	if cols, ok := c.Columns("AD", "ALUMNUS"); !ok || len(cols) != 2 {
		t.Errorf("columns = %v, %v", cols, ok)
	}
	if _, ok := c.Cardinality("AD", "NOPE"); ok {
		t.Error("unknown relation reported")
	}
	c.ObserveCardinality("AD", "ALUMNUS", 12)
	if n, _ := c.Cardinality("AD", "ALUMNUS"); n != 12 {
		t.Errorf("observed cardinality = %d, want 12", n)
	}
	// A cardinality-only observation must not fabricate a column list: an
	// entry without collected columns reads as column-unknown, so observing
	// rows can never disable column-dependent rewrites.
	c.ObserveCardinality("PD", "STUDENT", 5)
	if cols, ok := c.Columns("PD", "STUDENT"); ok {
		t.Errorf("cardinality-only entry reported columns %v", cols)
	}

	c.ObserveLatency("AD", 100*time.Millisecond)
	if d, ok := c.Latency("AD"); !ok || d != 100*time.Millisecond {
		t.Errorf("first observation = %v, %v", d, ok)
	}
	c.ObserveLatency("AD", 200*time.Millisecond)
	if d, _ := c.Latency("AD"); d <= 100*time.Millisecond || d >= 200*time.Millisecond {
		t.Errorf("EWMA %v not between the observations", d)
	}
	c.SetLatency("AD", time.Second)
	if d, _ := c.Latency("AD"); d != time.Second {
		t.Errorf("pinned latency = %v", d)
	}
}

func TestTransferCost(t *testing.T) {
	c := NewCatalog()
	if got := c.TransferCost("AD", 1000, 256); got != 0 {
		t.Errorf("unknown link cost = %v, want 0", got)
	}
	c.SetLatency("AD", 2*time.Millisecond)
	if got := c.TransferCost("AD", 1000, 256); got != 8*time.Millisecond {
		t.Errorf("1000 rows / 256 batch = %v, want 8ms (4 batches)", got)
	}
	if got := c.TransferCost("AD", 0, 256); got != 2*time.Millisecond {
		t.Errorf("empty result still costs one batch, got %v", got)
	}
}

func TestCollect(t *testing.T) {
	db := catalog.NewDatabase("XD")
	db.MustCreate("T", rel.SchemaOf("A", "B"), "A")
	if err := db.Insert("T", rel.Tuple{rel.Int(1), rel.Int(2)}); err != nil {
		t.Fatal(err)
	}
	c, err := Collect(map[string]lqp.LQP{"XD": lqp.NewLocal(db)})
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := c.Cardinality("XD", "T"); !ok || n != 1 {
		t.Errorf("collected cardinality = %d, %v", n, ok)
	}
	if _, ok := c.Latency("XD"); !ok {
		t.Error("collection did not seed a latency estimate")
	}
	if c.String() == "" {
		t.Error("empty dump")
	}
}

// bare is an LQP without the statistics capability; Collect skips it.
type bare struct{ inner lqp.LQP }

func (b bare) Name() string                             { return b.inner.Name() }
func (b bare) Relations() ([]string, error)             { return b.inner.Relations() }
func (b bare) Execute(op lqp.Op) (*rel.Relation, error) { return b.inner.Execute(op) }

func TestCollectSkipsIncapableLQPs(t *testing.T) {
	db := catalog.NewDatabase("YD")
	db.MustCreate("T", rel.SchemaOf("A"), "A")
	c, err := Collect(map[string]lqp.LQP{"YD": bare{inner: lqp.NewLocal(db)}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Cardinality("YD", "T"); ok {
		t.Error("stats collected from a capability-less LQP")
	}
}
