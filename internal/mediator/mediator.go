// Package mediator is the service layer that turns one shared Polygen Query
// Processor into a long-lived, concurrency-safe mediator: the paper's §V
// System P front end grown into a daemon (cmd/polygend). It implements
// wire.Mediator, so a wire.Server built with wire.NewMediatorServer exposes
// it over TCP to any number of thin clients (the shell's -connect mode,
// wire.Client.Query/OpenQuery, the B-SERVE workload driver).
//
// The service adds what a bare PQP lacks for multi-client serving:
//
//   - sessions: each client session carries an audit trail of the queries
//     it ran (text, wall time, result size, plan-cache hit) and the
//     federation metadata handshake thin clients need for \schemes and
//     \describe without catalog access;
//   - admission: a bounded session table with idle expiry, so abandoned
//     clients cannot grow server state forever;
//   - shared execution: every session's queries run on the one PQP — one
//     plan cache, one canonical-ID interner, one statistics catalog — so
//     the federation warms up once, not once per client.
//
// The PQP itself is safe for concurrent use (see pqp's package comment);
// the mediator adds only its own session state, guarded here.
package mediator

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/federation"
	"repro/internal/pqp"
	"repro/internal/sourceset"
	"repro/internal/translate"
	"repro/internal/wire"
)

// Config tunes a Service. The zero value serves with the defaults below.
type Config struct {
	// Federation names the federation ("polygen" when empty) — the "name"
	// answer of the mediator server.
	Federation string
	// MaxSessions bounds the session table (default 1024). OpenSession
	// refuses — after pruning idle sessions — beyond it.
	MaxSessions int
	// TrailLimit bounds each session's audit trail (default 256 entries);
	// older entries fall off the front.
	TrailLimit int
	// SessionIdle is the idle expiry: sessions untouched this long are
	// pruned on the next OpenSession (default 1h; <0 disables expiry).
	SessionIdle time.Duration
	// Degrade is the default degradation policy of sessions that do not
	// request one: PolicyFail (the zero value) fails a query whole when a
	// source exhausts its replicas; PolicyPartial lets exhausted scatter
	// legs drop out, named in the answer's diagnostics.
	Degrade federation.Policy
	// SlowQuery, when positive, turns on structured slow-query logging:
	// every statement whose wall time (for streams: time to open the
	// cursor) reaches the threshold writes one JSON line to SlowLog —
	// query text, duration, result size, plan-cache status and the
	// federation diagnostics known at that point. Failed statements log
	// too when they burned the threshold first.
	SlowQuery time.Duration
	// SlowLog receives the slow-query lines (default os.Stderr). Writes
	// are serialized by the service, so any io.Writer works.
	SlowLog io.Writer
}

const (
	defaultMaxSessions = 1024
	defaultTrailLimit  = 256
	defaultSessionIdle = time.Hour
)

func (c Config) withDefaults() Config {
	if c.Federation == "" {
		c.Federation = "polygen"
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = defaultMaxSessions
	}
	if c.TrailLimit <= 0 {
		c.TrailLimit = defaultTrailLimit
	}
	if c.SessionIdle == 0 {
		c.SessionIdle = defaultSessionIdle
	}
	if c.SlowLog == nil {
		c.SlowLog = os.Stderr
	}
	return c
}

// Service is a concurrency-safe mediator over one shared PQP.
type Service struct {
	q   *pqp.PQP
	cfg Config

	mu       sync.Mutex
	sessions map[string]*Session

	// Cumulative service counters (monotonic; see Counters). They exist
	// because session audit trails are bounded — totals must not shrink
	// when old trail entries fall off.
	queries     atomic.Uint64
	queryErrors atomic.Uint64
	slow        atomic.Uint64

	// slowMu serializes slow-query log lines so concurrent sessions never
	// interleave bytes within one line.
	slowMu sync.Mutex
}

// Counters is a snapshot of the service's cumulative query counters, all
// monotonic over the service's lifetime.
type Counters struct {
	// Queries counts every statement accepted by Query/OpenQuery, failed
	// ones included.
	Queries uint64
	// QueryErrors counts the failed ones (parse and execution errors).
	QueryErrors uint64
	// Slow counts statements that crossed the Config.SlowQuery threshold.
	Slow uint64
}

// Counters returns the cumulative query counters.
func (s *Service) Counters() Counters {
	return Counters{
		Queries:     s.queries.Load(),
		QueryErrors: s.queryErrors.Load(),
		Slow:        s.slow.Load(),
	}
}

// New builds a service over processor. The processor's configuration flags
// (Optimize, Plans, Stats, ...) must be settled before serving begins.
func New(processor *pqp.PQP, cfg Config) *Service {
	return &Service{q: processor, cfg: cfg.withDefaults(), sessions: make(map[string]*Session)}
}

// PQP returns the shared query processor (e.g. for plan-cache statistics).
func (s *Service) PQP() *pqp.PQP { return s.q }

// Federation implements wire.Mediator.
func (s *Service) Federation() string { return s.cfg.Federation }

// Session is one client session: identity plus audit trail.
type Session struct {
	// ID names the session on the wire.
	ID string
	// Created is the session's start time.
	Created time.Time

	limit  int
	policy federation.Policy

	mu       sync.Mutex
	lastUsed time.Time
	trail    []TrailEntry
}

// TrailEntry is one audited query.
type TrailEntry struct {
	// When the query started.
	When time.Time
	// Text is the query as received; Algebraic records which parser ran.
	Text      string
	Algebraic bool
	// Duration is the wall time to answer (for streams: to open the
	// cursor).
	Duration time.Duration
	// Rows is the materialized answer's cardinality; -1 for streamed
	// answers, whose size the mediator never sees.
	Rows int
	// CacheHit reports the plan came from the plan cache.
	CacheHit bool
	// Missing names the sources a degraded (partial-policy) answer lost;
	// empty for complete answers and for streams (whose losses the mediator
	// learns only after the client drains the cursor).
	Missing []string
	// Err is the failure, "" on success.
	Err string
}

// Policy returns the session's degradation policy.
func (se *Session) Policy() federation.Policy { return se.policy }

// Trail returns a copy of the session's audit trail, oldest first.
func (se *Session) Trail() []TrailEntry {
	se.mu.Lock()
	defer se.mu.Unlock()
	return append([]TrailEntry(nil), se.trail...)
}

// LastUsed returns the session's last activity time.
func (se *Session) LastUsed() time.Time {
	se.mu.Lock()
	defer se.mu.Unlock()
	return se.lastUsed
}

// Snapshot returns the session's last activity time and a copy of its audit
// trail under one lock acquisition — a consistent point-in-time read (the
// trail never contains a statement newer than the returned time). The V$
// virtual tables build their rows from it; reading LastUsed and Trail
// separately can interleave with a concurrent statement and disagree.
func (se *Session) Snapshot() (lastUsed time.Time, trail []TrailEntry) {
	se.mu.Lock()
	defer se.mu.Unlock()
	return se.lastUsed, append([]TrailEntry(nil), se.trail...)
}

func (se *Session) record(e TrailEntry) {
	if se == nil {
		return
	}
	se.mu.Lock()
	defer se.mu.Unlock()
	se.lastUsed = time.Now()
	se.trail = append(se.trail, e)
	if over := len(se.trail) - se.limit; over > 0 {
		se.trail = append(se.trail[:0:0], se.trail[over:]...)
	}
}

// newSessionID returns a fresh random session ID.
func newSessionID() (string, error) {
	var b [9]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("mediator: generating session id: %w", err)
	}
	return "s" + hex.EncodeToString(b[:]), nil
}

// OpenSession implements wire.Mediator: it prunes idle sessions, admits a
// new one under the bound, and returns its ID plus the federation metadata.
// The session's degradation policy is the requested one, or the service
// default when the request leaves it empty; the effective policy is echoed
// in SessionInfo.Policy.
func (s *Service) OpenSession(opts wire.SessionOptions) (wire.SessionInfo, error) {
	policy := s.cfg.Degrade
	if opts.Policy != "" {
		var err error
		if policy, err = federation.ParsePolicy(opts.Policy); err != nil {
			return wire.SessionInfo{}, fmt.Errorf("mediator: %w", err)
		}
	}
	id, err := newSessionID()
	if err != nil {
		return wire.SessionInfo{}, err
	}
	now := time.Now()
	sess := &Session{ID: id, Created: now, limit: s.cfg.TrailLimit, policy: policy, lastUsed: now}
	s.mu.Lock()
	s.pruneLocked(now)
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.mu.Unlock()
		return wire.SessionInfo{}, fmt.Errorf("mediator: session table full (%d sessions)", s.cfg.MaxSessions)
	}
	s.sessions[id] = sess
	s.mu.Unlock()
	return wire.SessionInfo{
		ID:         id,
		Federation: s.cfg.Federation,
		Sources:    s.sourceNames(),
		Schemes:    s.SchemeInfos(),
		Policy:     policy.String(),
	}, nil
}

// policyOf resolves the degradation policy for one request: the session's
// when there is one, the service default for sessionless callers.
func (s *Service) policyOf(sess *Session) federation.Policy {
	if sess != nil {
		return sess.policy
	}
	return s.cfg.Degrade
}

// sourceNames lists the federation's interned source names in registry
// (canonical) order.
func (s *Service) sourceNames() []string {
	reg := s.q.Registry()
	names := make([]string, reg.Len())
	for i := range names {
		names[i] = reg.Name(sourceset.ID(i))
	}
	return names
}

// pruneLocked drops sessions idle beyond the expiry. Callers hold s.mu.
func (s *Service) pruneLocked(now time.Time) {
	if s.cfg.SessionIdle <= 0 {
		return
	}
	for id, sess := range s.sessions {
		if now.Sub(sess.LastUsed()) > s.cfg.SessionIdle {
			delete(s.sessions, id)
		}
	}
}

// CloseSession implements wire.Mediator.
func (s *Service) CloseSession(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sessions[id]; !ok {
		return fmt.Errorf("mediator: unknown session %q", id)
	}
	delete(s.sessions, id)
	return nil
}

// Session returns the live session with the given ID.
func (s *Service) Session(id string) (*Session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	return sess, ok
}

// SessionCount returns the number of live sessions.
func (s *Service) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Sessions returns the live sessions, oldest first (ID breaks ties), as a
// copy of the session table taken under one lock acquisition. The returned
// *Session values are the live sessions — their own accessors (Trail,
// LastUsed) lock per session — but the slice itself is the caller's; the
// V$SESSION and V$STMT virtual tables snapshot through it.
func (s *Service) Sessions() []*Session {
	s.mu.Lock()
	out := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		out = append(out, sess)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Created.Equal(out[j].Created) {
			return out[i].Created.Before(out[j].Created)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// lookup resolves a request's session: "" is the sessionless (un-audited)
// caller, anything else must name a live session.
func (s *Service) lookup(id string) (*Session, error) {
	if id == "" {
		return nil, nil
	}
	sess, ok := s.Session(id)
	if !ok {
		return nil, fmt.Errorf("mediator: unknown session %q", id)
	}
	return sess, nil
}

// parse routes the query text through the right front end.
func (s *Service) parse(text string, algebraic bool) (translate.Expr, error) {
	if algebraic {
		return translate.ParseExpr(text)
	}
	return translate.CompileSQL(text, s.q.Schema())
}

// audit books one finished (or failed) statement: the session trail entry,
// the service's cumulative counters, and — past the threshold — the
// slow-query log. session may be "" for sessionless callers, whose
// statements count and log but are not trailed.
func (s *Service) audit(sess *Session, session string, entry TrailEntry, rep federation.Report) {
	sess.record(entry)
	s.queries.Add(1)
	if entry.Err != "" {
		s.queryErrors.Add(1)
	}
	if s.cfg.SlowQuery <= 0 || entry.Duration < s.cfg.SlowQuery {
		return
	}
	s.slow.Add(1)
	line, err := json.Marshal(struct {
		Time       string   `json:"time"`
		Session    string   `json:"session,omitempty"`
		Text       string   `json:"text"`
		Algebraic  bool     `json:"algebraic"`
		DurationMS float64  `json:"duration_ms"`
		Rows       int      `json:"rows"`
		CacheHit   bool     `json:"cache_hit"`
		Missing    []string `json:"missing,omitempty"`
		Retries    int      `json:"retries,omitempty"`
		Hedges     int      `json:"hedges,omitempty"`
		Err        string   `json:"err,omitempty"`
	}{
		Time:       entry.When.UTC().Format(time.RFC3339Nano),
		Session:    session,
		Text:       entry.Text,
		Algebraic:  entry.Algebraic,
		DurationMS: float64(entry.Duration) / float64(time.Millisecond),
		Rows:       entry.Rows,
		CacheHit:   entry.CacheHit,
		Missing:    rep.Missing,
		Retries:    rep.Retries,
		Hedges:     rep.Hedges,
		Err:        entry.Err,
	})
	if err != nil {
		return
	}
	s.slowMu.Lock()
	fmt.Fprintf(s.cfg.SlowLog, "%s\n", line)
	s.slowMu.Unlock()
}

// Query implements wire.Mediator: one materialized polygen query on the
// shared PQP, audited on the session's trail.
func (s *Service) Query(session, text string, algebraic bool) (*wire.MediatedAnswer, error) {
	sess, err := s.lookup(session)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	entry := TrailEntry{When: start, Text: text, Algebraic: algebraic, Rows: -1}
	fail := func(err error) (*wire.MediatedAnswer, error) {
		entry.Duration = time.Since(start)
		entry.Err = err.Error()
		s.audit(sess, session, entry, federation.Report{})
		return nil, err
	}
	e, err := s.parse(text, algebraic)
	if err != nil {
		return fail(err)
	}
	res, err := s.q.RunPolicy(e, s.policyOf(sess))
	if err != nil {
		return fail(err)
	}
	rep := res.Diag.Report()
	entry.Duration = time.Since(start)
	entry.Rows = res.Relation.Cardinality()
	entry.CacheHit = res.CacheHit
	entry.Missing = rep.Missing
	s.audit(sess, session, entry, rep)
	return &wire.MediatedAnswer{Relation: res.Relation, PlanRows: res.PlanLines(), CacheHit: res.CacheHit, Diag: rep}, nil
}

// OpenQuery implements wire.Mediator: the streamed variant. The trail
// records the time to open the stream; the answer's size is unknown to the
// mediator (Rows = -1).
func (s *Service) OpenQuery(session, text string, algebraic bool) (*wire.MediatedStream, error) {
	sess, err := s.lookup(session)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	entry := TrailEntry{When: start, Text: text, Algebraic: algebraic, Rows: -1}
	fail := func(err error) (*wire.MediatedStream, error) {
		entry.Duration = time.Since(start)
		entry.Err = err.Error()
		s.audit(sess, session, entry, federation.Report{})
		return nil, err
	}
	e, err := s.parse(text, algebraic)
	if err != nil {
		return fail(err)
	}
	cur, res, err := s.q.OpenPolicy(e, s.policyOf(sess))
	if err != nil {
		return fail(err)
	}
	entry.Duration = time.Since(start)
	entry.CacheHit = res.CacheHit
	// The stream has only opened: the audited duration (and any slow-query
	// line) covers planning and cursor construction; diagnostics reflect
	// what failover activity the open itself incurred.
	s.audit(sess, session, entry, res.Diag.Report())
	// Result.Diag is the live collector; the server snapshots it (Report)
	// only after the stream drains, so mid-stream failovers are counted.
	return &wire.MediatedStream{Cursor: cur, PlanRows: res.PlanLines(), CacheHit: res.CacheHit, Diag: res.Diag.Report}, nil
}

// SchemeInfos renders the polygen schema's metadata for thin clients.
func (s *Service) SchemeInfos() []wire.SchemeInfo {
	return wire.SchemeInfos(s.q.Schema())
}

var _ wire.Mediator = (*Service)(nil)
