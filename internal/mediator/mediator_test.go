package mediator

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/identity"
	"repro/internal/paperdata"
	"repro/internal/pqp"
	"repro/internal/wire"
)

const (
	sqlBanking = `SELECT ONAME, CEO FROM PORGANIZATION WHERE INDUSTRY = "Banking"`
	algMBA     = `( PALUMNUS [DEGREE = "MBA"] ) [ANAME]`
)

func newService(t *testing.T, cfg Config) *Service {
	t.Helper()
	fed := paperdata.New()
	q := pqp.New(fed.Schema, fed.Registry, identity.CaseFold{}, fed.LQPs())
	return New(q, cfg)
}

// serveMediator exposes svc over TCP and dials a client.
func serveMediator(t *testing.T, svc *Service) *wire.Client {
	t.Helper()
	srv := wire.NewMediatorServer(svc)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// canon renders a tagged relation registry-independently: every cell as
// datum plus sorted source-name sets, rows sorted. Two relations with equal
// canon are cell-for-cell equal regardless of interning order.
func canon(p *core.Relation) []string {
	rows := make([]string, 0, len(p.Tuples))
	for _, t := range p.Tuples {
		var b strings.Builder
		for i, c := range t {
			if i > 0 {
				b.WriteString(" | ")
			}
			o := c.O.Names(p.Reg)
			sort.Strings(o)
			in := c.I.Names(p.Reg)
			sort.Strings(in)
			fmt.Fprintf(&b, "%s {%s} {%s}", c.D, strings.Join(o, ","), strings.Join(in, ","))
		}
		rows = append(rows, b.String())
	}
	sort.Strings(rows)
	return rows
}

func sameRows(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSessionHandshake(t *testing.T) {
	svc := newService(t, Config{Federation: "paperfed"})
	c := serveMediator(t, svc)
	if c.Name() != "paperfed" {
		t.Errorf("server name = %q, want the federation name", c.Name())
	}
	info, err := c.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	if info.ID == "" || info.Federation != "paperfed" {
		t.Errorf("session info = %+v", info)
	}
	if strings.Join(info.Sources, ",") != "AD,PD,CD" {
		t.Errorf("handshake sources = %v, want the registry's canonical order", info.Sources)
	}
	if len(info.Schemes) == 0 {
		t.Fatal("handshake carried no schemes")
	}
	names := make(map[string]wire.SchemeInfo, len(info.Schemes))
	for _, si := range info.Schemes {
		names[si.Name] = si
	}
	pa, ok := names["PALUMNUS"]
	if !ok {
		t.Fatalf("PALUMNUS missing from schemes %v", info.Schemes)
	}
	if pa.Key == "" || len(pa.Attrs) == 0 || len(pa.Attrs[0].Mapping) == 0 {
		t.Errorf("PALUMNUS metadata incomplete: %+v", pa)
	}
	if svc.SessionCount() != 1 {
		t.Errorf("SessionCount = %d", svc.SessionCount())
	}
}

// TestQueryMatchesDirect: the answer a remote client gets — tags included —
// is cell-for-cell the answer the shared PQP computes directly, for both
// the SQL and the algebra front end and both transfer shapes.
func TestQueryMatchesDirect(t *testing.T) {
	svc := newService(t, Config{})
	c := serveMediator(t, svc)
	info, err := c.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		text      string
		algebraic bool
	}{{sqlBanking, false}, {algMBA, true}} {
		var direct *pqp.Result
		var derr error
		if tc.algebraic {
			direct, derr = svc.PQP().QueryAlgebra(tc.text)
		} else {
			direct, derr = svc.PQP().QuerySQL(tc.text)
		}
		if derr != nil {
			t.Fatal(derr)
		}
		want := canon(direct.Relation)

		ans, err := c.Query(info.ID, tc.text, tc.algebraic)
		if err != nil {
			t.Fatal(err)
		}
		if got := canon(ans.Relation); !sameRows(got, want) {
			t.Errorf("query %q: remote answer differs\n got: %v\nwant: %v", tc.text, got, want)
		}
		if len(ans.PlanRows) == 0 {
			t.Errorf("query %q returned no plan", tc.text)
		}

		cur, sans, err := c.OpenQuery(info.ID, tc.text, tc.algebraic)
		if err != nil {
			t.Fatal(err)
		}
		streamed, err := core.Drain(cur)
		if err != nil {
			t.Fatal(err)
		}
		if got := canon(streamed); !sameRows(got, want) {
			t.Errorf("queryopen %q: streamed answer differs\n got: %v\nwant: %v", tc.text, got, want)
		}
		if len(sans.PlanRows) == 0 {
			t.Errorf("queryopen %q returned no plan", tc.text)
		}
	}
}

// TestPlanCacheAcrossClients: the second identical query — even from a
// different session — hits the shared plan cache.
func TestPlanCacheAcrossClients(t *testing.T) {
	svc := newService(t, Config{})
	c := serveMediator(t, svc)
	s1, err := c.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	first, err := c.Query(s1.ID, sqlBanking, false)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Error("first query reported a cache hit")
	}
	second, err := c.Query(s2.ID, sqlBanking, false)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Error("second identical query missed the plan cache")
	}
}

func TestTrailRecords(t *testing.T) {
	svc := newService(t, Config{})
	c := serveMediator(t, svc)
	info, err := c.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(info.ID, sqlBanking, false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(info.ID, "SELECT NOPE FROM NOWHERE", false); err == nil {
		t.Fatal("bad query succeeded")
	}
	sess, ok := svc.Session(info.ID)
	if !ok {
		t.Fatal("session vanished")
	}
	trail := sess.Trail()
	if len(trail) != 2 {
		t.Fatalf("trail has %d entries, want 2: %+v", len(trail), trail)
	}
	if trail[0].Text != sqlBanking || trail[0].Err != "" || trail[0].Rows < 1 {
		t.Errorf("success entry = %+v", trail[0])
	}
	if trail[1].Err == "" {
		t.Errorf("failure entry carries no error: %+v", trail[1])
	}
}

func TestTrailBounded(t *testing.T) {
	svc := newService(t, Config{TrailLimit: 3})
	info, err := svc.OpenSession(wire.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := svc.Query(info.ID, sqlBanking, false); err != nil {
			t.Fatal(err)
		}
	}
	sess, _ := svc.Session(info.ID)
	if got := len(sess.Trail()); got != 3 {
		t.Fatalf("trail has %d entries, want the 3 most recent", got)
	}
}

func TestSessionLifecycle(t *testing.T) {
	svc := newService(t, Config{})
	c := serveMediator(t, svc)
	// Sessionless queries work (and audit nowhere).
	if _, err := c.Query("", sqlBanking, false); err != nil {
		t.Fatalf("sessionless query: %v", err)
	}
	// Unknown sessions are refused.
	if _, err := c.Query("s-bogus", sqlBanking, false); err == nil {
		t.Fatal("unknown session accepted")
	}
	info, err := c.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CloseSession(info.ID); err != nil {
		t.Fatal(err)
	}
	if err := c.CloseSession(info.ID); err == nil {
		t.Fatal("double CloseSession succeeded")
	}
	if _, err := c.Query(info.ID, sqlBanking, false); err == nil {
		t.Fatal("closed session accepted a query")
	}
}

func TestSessionBoundAndExpiry(t *testing.T) {
	svc := newService(t, Config{MaxSessions: 2, SessionIdle: 10 * time.Millisecond})
	a, err := svc.OpenSession(wire.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.OpenSession(wire.SessionOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.OpenSession(wire.SessionOptions{}); err == nil {
		t.Fatal("session table bound not enforced")
	}
	// After the idle expiry both sessions are prunable; admission resumes.
	time.Sleep(20 * time.Millisecond)
	if _, err := svc.OpenSession(wire.SessionOptions{}); err != nil {
		t.Fatalf("expired sessions not pruned: %v", err)
	}
	if _, ok := svc.Session(a.ID); ok {
		t.Error("idle session survived pruning")
	}
}
