package federation

import (
	"fmt"
	"io"
	"sort"
	"testing"

	"repro/internal/catalog"
	"repro/internal/lqp"
	"repro/internal/rel"
)

// Stats gives the scriptable fake the statistics capability, so sharded
// fixtures can prime their placement maps through the real code path.
func (f *fake) Stats() ([]lqp.RelationStats, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	st, _, err := lqp.StatsOf(f.inner)
	return st, err
}

var shardCounts = []int{1, 2, 4, 7}

// shardDB is testDB plus a keyless relation and a relation whose projection
// collapses rows — the shapes that stress whole-tuple placement and
// cross-shard duplicate elimination.
func shardDB(rows int) *catalog.Database {
	db := testDB(rows)
	db.MustCreate("GRADES", rel.SchemaOf("GID", "GRADE"), "GID")
	grades := make([]rel.Tuple, 0, rows)
	for i := 0; i < rows; i++ {
		grades = append(grades, rel.Tuple{
			rel.String(shardID("G", i)),
			rel.Int(int64(i % 3)), // Project [GRADE] collapses to 3 rows
		})
	}
	if err := db.Insert("GRADES", grades...); err != nil {
		panic(err)
	}
	db.MustCreate("LOG", rel.SchemaOf("EVENT", "N")) // no key: whole-tuple placement
	logs := make([]rel.Tuple, 0, rows)
	for i := 0; i < rows; i++ {
		logs = append(logs, rel.Tuple{rel.String("ev"), rel.Int(int64(i))})
	}
	if err := db.Insert("LOG", logs...); err != nil {
		panic(err)
	}
	return db
}

func shardID(prefix string, i int) string { return fmt.Sprintf("%s%04d", prefix, i) }

// sortedKeys renders a relation's tuples as sorted canonical keys — the
// order-insensitive comparison form.
func sortedKeys(r *rel.Relation) []string {
	out := make([]string, len(r.Tuples))
	for i, t := range r.Tuples {
		out[i] = t.Key()
	}
	sort.Strings(out)
	return out
}

func equalRows(t *testing.T, label string, got, want *rel.Relation) {
	t.Helper()
	g, w := sortedKeys(got), sortedKeys(want)
	if len(g) != len(w) {
		t.Errorf("%s: %d rows, want %d", label, len(g), len(w))
		return
	}
	for i := range g {
		if g[i] != w[i] {
			t.Errorf("%s: row %d diverges:\n  got  %q\n  want %q", label, i, g[i], w[i])
			return
		}
	}
}

// TestSliceReconstructs proves the slices partition the catalog exactly:
// disjoint by placement, and their union is the original, relation by
// relation.
func TestSliceReconstructs(t *testing.T) {
	db := shardDB(300)
	for _, n := range shardCounts {
		m := NewShardMap(db, n)
		for _, name := range db.Relations() {
			schema, orig, err := db.View(name)
			if err != nil {
				t.Fatalf("View(%s): %v", name, err)
			}
			place := m.placement(name, schema)
			var union []rel.Tuple
			total := 0
			for i := 0; i < n; i++ {
				slice, err := Slice(db, i, n)
				if err != nil {
					t.Fatalf("Slice(%d/%d): %v", i, n, err)
				}
				key, _ := db.Key(name)
				skey, err := slice.Key(name)
				if err != nil || len(skey) != len(key) {
					t.Fatalf("slice %d/%d of %s lost its key: %v %v", i, n, name, skey, err)
				}
				_, tuples, err := slice.View(name)
				if err != nil {
					t.Fatalf("slice View(%s): %v", name, err)
				}
				total += len(tuples)
				for _, tup := range tuples {
					if got := place(tup); got != i {
						t.Fatalf("slice %d/%d of %s holds tuple placed on shard %d", i, n, name, got)
					}
				}
				union = append(union, tuples...)
			}
			if total != len(orig) {
				t.Fatalf("%d shards of %s hold %d rows, want %d", n, name, total, len(orig))
			}
			u := &rel.Relation{Schema: schema, Tuples: union}
			o := &rel.Relation{Schema: schema, Tuples: orig}
			equalRows(t, name, u, o)
		}
	}
}

func TestSliceRejectsBadIndex(t *testing.T) {
	db := testDB(10)
	if _, err := Slice(db, 3, 3); err == nil {
		t.Error("Slice(3,3) should reject an out-of-range index")
	}
	if _, err := Slice(db, -1, 3); err == nil {
		t.Error("Slice(-1,3) should reject a negative index")
	}
	if _, err := Slice(db, 0, 0); err == nil {
		t.Error("Slice(0,0) should reject a zero shard count")
	}
}

// TestShardHashNormalization pins the placement hash to the canonical datum:
// +0 and -0 floats are one datum, equal strings hash equally, and the hash
// is a pure function of the value (no per-process seed).
func TestShardHashNormalization(t *testing.T) {
	if ShardHash(rel.Float(0)) != ShardHash(rel.Float(negZero())) {
		t.Error("+0 and -0 place on different shards")
	}
	if ShardHash(rel.String("x")) != ShardHash(rel.String("x")) {
		t.Error("equal strings hash apart")
	}
	if ShardHash(rel.String("x")) == ShardHash(rel.String("y")) {
		t.Error("distinct strings collide (suspicious)")
	}
}

func negZero() float64 {
	z := 0.0
	return -z
}

// newShardedFixture slices db across n shards and registers both the
// unsharded and the sharded source in fresh registries, returning the two
// LQP views plus the shard-level fakes for call accounting.
func newShardedFixture(t *testing.T, db *catalog.Database, n int) (unsharded, sharded lqp.LQP, fakes []*fake, src *ShardedSource) {
	t.Helper()
	reg := NewRegistry(testConfig())
	reg.Add("AD", lqp.NewLocal(db))
	unshardedSrc, _ := reg.Source("AD")

	sreg := NewRegistry(testConfig())
	groups := make([][]lqp.LQP, n)
	fakes = make([]*fake, n)
	for i := 0; i < n; i++ {
		slice, err := Slice(db, i, n)
		if err != nil {
			t.Fatalf("Slice(%d/%d): %v", i, n, err)
		}
		fakes[i] = newFake(slice, nil)
		groups[i] = []lqp.LQP{fakes[i]}
	}
	src = sreg.AddSharded("AD", groups...)
	return unshardedSrc, src, fakes, src
}

// TestSliceSnapshotRoundTrip: a horizontal slice survives the snapshot
// file format — `lqpd -shard i/N` state saved with catalog.SaveFile and
// reopened serves exactly the same slice: same name, same keys, every
// relation cell-for-cell identical, and every reopened row still placed on
// its own shard. This is the deployment path where each shard daemon is
// (re)started from a snapshot file instead of re-slicing the full dataset.
func TestSliceSnapshotRoundTrip(t *testing.T) {
	db := shardDB(120)
	const n = 3
	for i := 0; i < n; i++ {
		slice, err := Slice(db, i, n)
		if err != nil {
			t.Fatalf("Slice(%d/%d): %v", i, n, err)
		}
		path := t.TempDir() + "/slice.snapshot"
		if err := slice.SaveFile(path); err != nil {
			t.Fatalf("SaveFile(slice %d/%d): %v", i, n, err)
		}
		got, err := catalog.OpenFile(path)
		if err != nil {
			t.Fatalf("OpenFile(slice %d/%d): %v", i, n, err)
		}
		if got.Name() != slice.Name() {
			t.Errorf("reopened slice %d/%d named %q, want %q", i, n, got.Name(), slice.Name())
		}
		m := NewShardMap(db, n)
		for _, name := range slice.Relations() {
			schema, want, err := slice.View(name)
			if err != nil {
				t.Fatalf("slice View(%s): %v", name, err)
			}
			gotSchema, tuples, err := got.View(name)
			if err != nil {
				t.Fatalf("reopened View(%s): %v", name, err)
			}
			if gotSchema.String() != schema.String() {
				t.Errorf("%s schema %s, want %s", name, gotSchema, schema)
			}
			wantKey, _ := slice.Key(name)
			gotKey, err := got.Key(name)
			if err != nil || fmt.Sprint(gotKey) != fmt.Sprint(wantKey) {
				t.Errorf("%s key %v (%v), want %v", name, gotKey, err, wantKey)
			}
			equalRows(t, fmt.Sprintf("slice %d/%d %s", i, n, name),
				&rel.Relation{Schema: gotSchema, Tuples: tuples},
				&rel.Relation{Schema: schema, Tuples: want})
			place := m.placement(name, gotSchema)
			for _, tup := range tuples {
				if p := place(tup); p != i {
					t.Fatalf("reopened slice %d/%d of %s holds a tuple placed on shard %d", i, n, name, p)
				}
			}
		}
	}
}

// TestShardedSourceMatchesUnsharded is the core property: every operation
// and every pushed plan, materialized and streamed, answers cell-for-cell
// identically (as a multiset) to the unsharded source at every shard count.
func TestShardedSourceMatchesUnsharded(t *testing.T) {
	db := shardDB(500)
	ops := []lqp.Op{
		lqp.Retrieve("ALUMNUS"),
		lqp.Retrieve("LOG"),
		lqp.Select("ALUMNUS", "AID#", rel.ThetaEQ, rel.String("A00007")),
		lqp.Select("ALUMNUS", "ANAME", rel.ThetaEQ, rel.String("name-13")),
		lqp.Select("GRADES", "GRADE", rel.ThetaLT, rel.Int(2)),
		lqp.Restrict("ALUMNUS", "AID#", rel.ThetaNE, "ANAME"),
		lqp.Project("GRADES", "GRADE"),
		lqp.Project("ALUMNUS", "ANAME"),
	}
	plans := []lqp.Plan{
		lqp.PlanOf(lqp.Retrieve("GRADES"), lqp.Select("GRADES", "GRADE", rel.ThetaLT, rel.Int(2)), lqp.Project("GRADES", "GRADE")),
		lqp.PlanOf(lqp.Retrieve("ALUMNUS"), lqp.Select("ALUMNUS", "AID#", rel.ThetaEQ, rel.String("A00042"))),
		lqp.PlanOf(lqp.Select("ALUMNUS", "AID#", rel.ThetaEQ, rel.String("A00042")), lqp.Project("ALUMNUS", "ANAME")),
		lqp.PlanOf(lqp.Retrieve("LOG"), lqp.Select("LOG", "N", rel.ThetaLT, rel.Int(100))),
	}
	for _, n := range shardCounts {
		plain, shardedLQP, _, src := newShardedFixture(t, db, n)
		if _, err := src.Stats(); err != nil { // prime the placement map
			t.Fatalf("Stats: %v", err)
		}
		for _, op := range ops {
			want, err := plain.Execute(op)
			if err != nil {
				t.Fatalf("unsharded %v: %v", op, err)
			}
			got, err := shardedLQP.Execute(op)
			if err != nil {
				t.Fatalf("sharded(%d) Execute %v: %v", n, op, err)
			}
			equalRows(t, op.String(), got, want)
			cur, err := src.Open(op)
			if err != nil {
				t.Fatalf("sharded(%d) Open %v: %v", n, op, err)
			}
			equalRows(t, "stream "+op.String(), drain(t, cur), want)
		}
		for _, p := range plans {
			want, err := lqp.ExecutePlanOn(plain, p)
			if err != nil {
				t.Fatalf("unsharded plan %v: %v", p, err)
			}
			got, err := src.ExecutePlan(p)
			if err != nil {
				t.Fatalf("sharded(%d) ExecutePlan %v: %v", n, p, err)
			}
			equalRows(t, p.String(), got, want)
			cur, err := src.OpenPlan(p)
			if err != nil {
				t.Fatalf("sharded(%d) OpenPlan %v: %v", n, p, err)
			}
			equalRows(t, "stream "+p.String(), drain(t, cur), want)
		}
	}
}

// TestShardPruning proves a string-equality Select on the placement key
// touches exactly one shard once the map is primed — and that the pruned
// shard is the one holding the row.
func TestShardPruning(t *testing.T) {
	db := shardDB(200)
	_, _, fakes, src := newShardedFixture(t, db, 4)
	if _, err := src.Stats(); err != nil {
		t.Fatalf("Stats: %v", err)
	}
	before := make([]int64, len(fakes))
	for i, f := range fakes {
		before[i] = f.calls.Load()
	}
	op := lqp.Select("ALUMNUS", "AID#", rel.ThetaEQ, rel.String("A00007"))
	r, err := src.Execute(op)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(r.Tuples) != 1 {
		t.Fatalf("pruned select returned %d rows, want 1", len(r.Tuples))
	}
	touched := 0
	for i, f := range fakes {
		if f.calls.Load() > before[i] {
			touched++
		}
	}
	if touched != 1 {
		t.Errorf("pruned select touched %d shards, want 1", touched)
	}
	if want := ShardOf(ShardHash(rel.String("A00007")), 4); fakes[want].calls.Load() == before[want] {
		t.Errorf("pruned select skipped the owning shard %d", want)
	}

	// A non-key select must consult every shard.
	for i, f := range fakes {
		before[i] = f.calls.Load()
	}
	if _, err := src.Execute(lqp.Select("ALUMNUS", "ANAME", rel.ThetaEQ, rel.String("name-7"))); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	for i, f := range fakes {
		if f.calls.Load() == before[i] {
			t.Errorf("non-key select skipped shard %d", i)
		}
	}

	// Numeric equality must not prune: Int and Float compare equal across
	// kinds but hash apart.
	m := src.shardMap()
	if got := m.PruneOp(lqp.Select("GRADES", "GID", rel.ThetaEQ, rel.Int(7))); got != -1 {
		t.Errorf("numeric-const select pruned to shard %d, want -1", got)
	}
}

// TestShardExhaustionNamesLogicalSource: a shard losing all replicas
// surfaces as the logical source's exhaustion, so the degradation policy
// drops the whole source — never a silent shard-sized hole in the answer.
func TestShardExhaustionNamesLogicalSource(t *testing.T) {
	db := shardDB(100)
	sreg := NewRegistry(testConfig())
	var groups [][]lqp.LQP
	for i := 0; i < 2; i++ {
		slice, err := Slice(db, i, 2)
		if err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			groups = append(groups, []lqp.LQP{newFake(slice, func(int64) error { return io.ErrUnexpectedEOF })})
		} else {
			groups = append(groups, []lqp.LQP{newFake(slice, nil)})
		}
	}
	src := sreg.AddSharded("AD", groups...)

	_, err := src.Execute(lqp.Retrieve("ALUMNUS"))
	assertExhausted(t, "Execute", err)
	cur, err := src.Open(lqp.Retrieve("ALUMNUS"))
	if err == nil {
		_, err = rel.Drain(cur)
	}
	assertExhausted(t, "Open", err)
}

func assertExhausted(t *testing.T, label string, err error) {
	t.Helper()
	ex, ok := err.(*ExhaustedError)
	if !ok {
		t.Fatalf("%s: error %v (%T), want *ExhaustedError", label, err, err)
	}
	if ex.Source != "AD" {
		t.Errorf("%s: exhaustion names %q, want logical source AD", label, ex.Source)
	}
}

// TestShardReplicaFailover: each shard is itself a replica set — killing
// one replica of one shard must not change the answer.
func TestShardReplicaFailover(t *testing.T) {
	db := shardDB(200)
	reg := NewRegistry(testConfig())
	reg.Add("AD", lqp.NewLocal(db))
	plain, _ := reg.Source("AD")
	want, err := plain.Execute(lqp.Retrieve("ALUMNUS"))
	if err != nil {
		t.Fatal(err)
	}

	sreg := NewRegistry(testConfig())
	var groups [][]lqp.LQP
	for i := 0; i < 3; i++ {
		slice, err := Slice(db, i, 3)
		if err != nil {
			t.Fatal(err)
		}
		dead := newFake(slice, func(int64) error { return io.ErrUnexpectedEOF })
		live := newFake(slice, nil)
		groups = append(groups, []lqp.LQP{dead, live}) // primary of every shard is down
	}
	src := sreg.AddSharded("AD", groups...)
	got, err := src.Execute(lqp.Retrieve("ALUMNUS"))
	if err != nil {
		t.Fatalf("Execute with dead primaries: %v", err)
	}
	equalRows(t, "failover retrieve", got, want)
}

// TestRegistryShardedSurface pins the registry bookkeeping: the logical
// name is the only LQP, health rows report under it, and the Shards
// snapshot carries the row accounting.
func TestRegistryShardedSurface(t *testing.T) {
	db := shardDB(120)
	reg := NewRegistry(testConfig())
	var groups [][]lqp.LQP
	for i := 0; i < 3; i++ {
		slice, err := Slice(db, i, 3)
		if err != nil {
			t.Fatal(err)
		}
		groups = append(groups, []lqp.LQP{lqp.NewLocal(slice)})
	}
	src := reg.AddSharded("AD", groups...)

	lqps := reg.LQPs()
	if len(lqps) != 1 || lqps["AD"] != lqp.LQP(src) {
		t.Fatalf("LQPs = %v, want exactly the logical AD", lqps)
	}
	if got, ok := reg.Sharded("AD"); !ok || got != src {
		t.Fatalf("Sharded(AD) = %v, %v", got, ok)
	}
	for _, h := range reg.Health() {
		if h.Source != "AD" {
			t.Errorf("health row reports source %q, want AD", h.Source)
		}
	}
	if got := len(reg.Health()); got != 3 {
		t.Errorf("Health has %d rows, want 3 (one per shard replica)", got)
	}

	if _, err := src.Execute(lqp.Retrieve("ALUMNUS")); err != nil {
		t.Fatal(err)
	}
	infos := reg.Shards()
	if len(infos) != 3 {
		t.Fatalf("Shards has %d rows, want 3", len(infos))
	}
	var rows int64
	for _, in := range infos {
		if in.Source != "AD" || in.Shards != 3 {
			t.Errorf("shard info %+v malformed", in)
		}
		if !in.Healthy {
			t.Errorf("shard %d reports unhealthy", in.Shard)
		}
		rows += in.Rows
	}
	if rows != 120 {
		t.Errorf("shards served %d rows total, want 120", rows)
	}
}
