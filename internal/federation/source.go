package federation

// This file is the resilient LQP wrapper: Source presents N replica
// endpoints of one logical source as a single lqp.LQP (with the streaming,
// plan-pushdown and statistics capabilities), adding per-call deadlines,
// bounded retries with exponential backoff and seeded jitter, failover
// across replicas, hedged streaming opens, a per-replica circuit breaker,
// and mid-stream resume of cut cursors on another replica.

import (
	"errors"
	"io"
	"math/rand"
	"sync"
	"time"

	"repro/internal/lqp"
	"repro/internal/rel"
	"repro/internal/stats"
)

// Collectable is the diagnostics capability of a federation-backed LQP:
// Bind returns a view of the same source that reports its fault-handling
// activity (retries, hedges, replicas used) into d. The PQP discovers it by
// interface assertion, exactly like the lqp capabilities — sources without
// it simply contribute nothing to a query's diagnostics.
type Collectable interface {
	Bind(d *Diagnostics) lqp.LQP
}

// replica is one endpoint of a Source: the LQP handle plus its health
// state (last-known liveness, consecutive-failure count, circuit breaker)
// and its latency estimator (which places hedges).
type replica struct {
	label string
	l     lqp.LQP
	est   stats.Estimator

	mu        sync.Mutex
	healthy   bool
	consec    int       // consecutive failures
	openUntil time.Time // circuit breaker open until then; zero = closed
	lastErr   error
}

// markUp records a successful call or probe: the replica is live, the
// failure streak and breaker reset.
func (r *replica) markUp() {
	r.mu.Lock()
	r.healthy = true
	r.consec = 0
	r.openUntil = time.Time{}
	r.lastErr = nil
	r.mu.Unlock()
}

// markDown records a failed call or probe; after cfg.BreakerThreshold
// consecutive failures the circuit breaker opens for cfg.BreakerCooldown.
func (r *replica) markDown(cfg Config, err error) {
	r.mu.Lock()
	r.healthy = false
	r.consec++
	r.lastErr = err
	if r.consec >= cfg.BreakerThreshold {
		r.openUntil = time.Now().Add(cfg.BreakerCooldown)
	}
	r.mu.Unlock()
}

// admits reports whether the breaker lets a call through at t: closed, or
// open but past the cooldown (half-open — the next call is the probe).
func (r *replica) admits(t time.Time) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.openUntil.IsZero() || t.After(r.openUntil)
}

func (r *replica) isHealthy() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.healthy
}

// Source is the resilient LQP over one logical source's replicas. It
// implements lqp.LQP plus every optional capability; calls are routed to
// the first healthy replica and fail over on error. Safe for concurrent
// use (scatter legs of parallel queries share it).
type Source struct {
	name string
	cfg  Config
	reps []*replica

	jmu    sync.Mutex
	jitter *rand.Rand
}

func newSource(name string, cfg Config, reps []*replica) *Source {
	return &Source{
		name:   name,
		cfg:    cfg,
		reps:   reps,
		jitter: rand.New(rand.NewSource(cfg.Seed ^ int64(len(name))<<32 + int64(len(reps)))),
	}
}

// Name implements lqp.LQP: the logical source name — what the answer's
// source tags carry, identical no matter which replica served.
func (s *Source) Name() string { return s.name }

// Replicas returns the replica labels in configured order.
func (s *Source) Replicas() []string {
	labels := make([]string, len(s.reps))
	for i, r := range s.reps {
		labels[i] = r.label
	}
	return labels
}

// Bind implements Collectable.
func (s *Source) Bind(d *Diagnostics) lqp.LQP { return &boundSource{s: s, d: d} }

// candidates orders the replicas for the next attempt: last-known-healthy
// first (in configured order), then unhealthy ones whose breaker admits a
// probe call; if every breaker is open, all replicas in order — trying a
// broken replica beats failing without trying, and it is how the
// federation recovers when active probing is off.
func (s *Source) candidates() []*replica {
	now := time.Now()
	var up, down []*replica
	for _, r := range s.reps {
		switch {
		case !r.admits(now):
		case r.isHealthy():
			up = append(up, r)
		default:
			down = append(down, r)
		}
	}
	if len(up)+len(down) == 0 {
		return s.reps
	}
	return append(up, down...)
}

// backoff sleeps the exponential, jittered backoff before retry attempt n
// (1-based count of completed attempts).
func (s *Source) backoff(attempt int) {
	d := s.cfg.BackoffBase
	for i := 1; i < attempt && d < s.cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > s.cfg.BackoffMax {
		d = s.cfg.BackoffMax
	}
	s.jmu.Lock()
	j := time.Duration(s.jitter.Int63n(int64(d)/2 + 1))
	s.jmu.Unlock()
	time.Sleep(d/2 + j)
}

func (s *Source) noteError() {
	if s.cfg.Stats != nil {
		s.cfg.Stats.ObserveError(s.name)
	}
}

func (s *Source) noteRetry(d *Diagnostics) {
	d.addRetry(1)
	if s.cfg.Stats != nil {
		s.cfg.Stats.ObserveRetry(s.name)
	}
}

func (s *Source) noteHedge(d *Diagnostics) {
	d.addHedge()
	if s.cfg.Stats != nil {
		s.cfg.Stats.ObserveHedge(s.name)
	}
}

// invoke runs f against one replica under the per-call deadline. A call
// that blows the deadline is abandoned (its goroutine finishes on its own,
// bounded by the wire layer's transport deadlines) and discard, when
// non-nil, releases whatever the late call eventually produced.
func invoke[T any](s *Source, r *replica, f func(lqp.LQP) (T, error), discard func(T)) (T, error) {
	type result struct {
		v   T
		err error
	}
	ch := make(chan result, 1)
	go func() {
		v, err := f(r.l)
		ch <- result{v, err}
	}()
	timer := time.NewTimer(s.cfg.CallTimeout)
	defer timer.Stop()
	select {
	case res := <-ch:
		return res.v, res.err
	case <-timer.C:
		if discard != nil {
			go func() {
				if res := <-ch; res.err == nil {
					discard(res.v)
				}
			}()
		}
		var zero T
		return zero, &DeadlineError{Source: s.name, Replica: r.label, Timeout: s.cfg.CallTimeout}
	}
}

// call is the unary retry loop: every candidate replica in order, then
// MaxRetries more passes with backoff, then a typed *ExhaustedError.
func call[T any](s *Source, d *Diagnostics, f func(lqp.LQP) (T, error), discard func(T)) (T, error) {
	attempts := 0
	var last error
	for cycle := 0; cycle <= s.cfg.MaxRetries; cycle++ {
		for _, r := range s.candidates() {
			if attempts > 0 {
				s.noteRetry(d)
				s.backoff(attempts)
			}
			attempts++
			start := time.Now()
			v, err := invoke(s, r, f, discard)
			if err == nil {
				r.markUp()
				r.est.Observe(time.Since(start))
				d.addReplica(s.name, r.label)
				return v, nil
			}
			r.markDown(s.cfg, err)
			s.noteError()
			last = err
		}
	}
	var zero T
	if last == nil {
		last = errors.New("no replicas configured")
	}
	return zero, &ExhaustedError{Source: s.name, Attempts: attempts, Last: last}
}

// Execute implements lqp.LQP.
func (s *Source) Execute(op lqp.Op) (*rel.Relation, error) { return s.execute(nil, op) }

func (s *Source) execute(d *Diagnostics, op lqp.Op) (*rel.Relation, error) {
	return call(s, d, func(l lqp.LQP) (*rel.Relation, error) { return l.Execute(op) }, nil)
}

// Relations implements lqp.LQP.
func (s *Source) Relations() ([]string, error) { return s.relations(nil) }

func (s *Source) relations(d *Diagnostics) ([]string, error) {
	return call(s, d, func(l lqp.LQP) ([]string, error) { return l.Relations() }, nil)
}

// ExecutePlan implements lqp.PlanRunner (replicas without the capability
// run the plan through the step-by-step fallback).
func (s *Source) ExecutePlan(p lqp.Plan) (*rel.Relation, error) { return s.executePlan(nil, p) }

func (s *Source) executePlan(d *Diagnostics, p lqp.Plan) (*rel.Relation, error) {
	return call(s, d, func(l lqp.LQP) (*rel.Relation, error) { return lqp.ExecutePlanOn(l, p) }, nil)
}

// Stats implements lqp.StatsProvider; replicas without the capability
// report no statistics.
func (s *Source) Stats() ([]lqp.RelationStats, error) { return s.stats(nil) }

func (s *Source) stats(d *Diagnostics) ([]lqp.RelationStats, error) {
	return call(s, d, func(l lqp.LQP) ([]lqp.RelationStats, error) {
		st, _, err := lqp.StatsOf(l)
		return st, err
	}, nil)
}

// Open implements lqp.Streamer: a hedged, deadline-bounded open with
// failover, returning a cursor that resumes mid-stream failures on another
// replica.
func (s *Source) Open(op lqp.Op) (rel.Cursor, error) { return s.openStream(nil, op) }

func (s *Source) openStream(d *Diagnostics, op lqp.Op) (rel.Cursor, error) {
	return s.open(d, func(l lqp.LQP) (rel.Cursor, error) { return lqp.OpenLQP(l, op) })
}

// OpenPlan implements lqp.PlanStreamer, with the same semantics as Open.
func (s *Source) OpenPlan(p lqp.Plan) (rel.Cursor, error) { return s.openPlanStream(nil, p) }

func (s *Source) openPlanStream(d *Diagnostics, p lqp.Plan) (rel.Cursor, error) {
	return s.open(d, func(l lqp.LQP) (rel.Cursor, error) { return lqp.OpenPlanOn(l, p) })
}

func closeCursor(c rel.Cursor) { c.Close() }

// open is the streaming retry loop. The first attempt may hedge: if the
// primary replica has not answered within the hedge delay (configured, or
// derived from its latency estimator's p95), the next candidate's open
// launches too and the first to answer wins — the loser is closed when it
// eventually returns. Later attempts are plain failover with backoff.
func (s *Source) open(d *Diagnostics, open func(lqp.LQP) (rel.Cursor, error)) (rel.Cursor, error) {
	attempts := 0
	var last error
	for cycle := 0; cycle <= s.cfg.MaxRetries; cycle++ {
		cands := s.candidates()
		for i, r := range cands {
			if attempts > 0 {
				s.noteRetry(d)
				s.backoff(attempts)
			}
			var hedge *replica
			if attempts == 0 && i+1 < len(cands) {
				hedge = cands[i+1]
			}
			cur, winner, n, err := s.openOnce(d, r, hedge, open)
			attempts += n
			if err == nil {
				winner.markUp()
				d.addReplica(s.name, winner.label)
				return &resumeCursor{s: s, d: d, open: open, cur: cur, r: winner}, nil
			}
			last = err
		}
	}
	if last == nil {
		last = errors.New("no replicas configured")
	}
	return nil, &ExhaustedError{Source: s.name, Attempts: attempts, Last: last}
}

// hedgeDelay picks how long to wait on prim before launching a hedge:
// the configured delay, or prim's p95 latency estimate floored at
// HedgeMin. Negative means never hedge (disabled, or no estimate yet).
func (s *Source) hedgeDelay(prim *replica) time.Duration {
	hd := s.cfg.HedgeDelay
	if hd < 0 {
		return -1
	}
	if hd == 0 {
		hd = prim.est.P95()
		if hd == 0 {
			return -1
		}
		if hd < s.cfg.HedgeMin {
			hd = s.cfg.HedgeMin
		}
	}
	if hd > s.cfg.CallTimeout {
		return -1
	}
	return hd
}

// openOnce opens on prim, hedging on hedge (may be nil) after the hedge
// delay. Returns the winning cursor and replica, or the last error once
// every launched open has failed or the deadline has passed. n is how many
// opens were launched (for the caller's attempt count).
func (s *Source) openOnce(d *Diagnostics, prim, hedge *replica, open func(lqp.LQP) (rel.Cursor, error)) (rel.Cursor, *replica, int, error) {
	type result struct {
		cur rel.Cursor
		r   *replica
		err error
	}
	ch := make(chan result, 2)
	launch := func(r *replica) {
		go func() {
			cur, err := open(r.l)
			ch <- result{cur, r, err}
		}()
	}
	start := time.Now()
	launch(prim)
	pending := []*replica{prim}
	launched := 1

	deadline := time.NewTimer(s.cfg.CallTimeout)
	defer deadline.Stop()
	var hedgeC <-chan time.Time
	if hedge != nil {
		if hd := s.hedgeDelay(prim); hd >= 0 {
			ht := time.NewTimer(hd)
			defer ht.Stop()
			hedgeC = ht.C
		}
	}

	// discardLate closes whatever the still-pending opens deliver.
	discardLate := func() {
		for range pending {
			go func() {
				if res := <-ch; res.err == nil {
					res.cur.Close()
				}
			}()
		}
	}
	drop := func(r *replica) {
		for i, p := range pending {
			if p == r {
				pending = append(pending[:i], pending[i+1:]...)
				return
			}
		}
	}

	var last error
	for len(pending) > 0 {
		select {
		case res := <-ch:
			drop(res.r)
			if res.err == nil {
				res.r.est.Observe(time.Since(start))
				discardLate()
				return res.cur, res.r, launched, nil
			}
			res.r.markDown(s.cfg, res.err)
			s.noteError()
			last = res.err
		case <-hedgeC:
			hedgeC = nil
			if hedge.admits(time.Now()) {
				s.noteHedge(d)
				launch(hedge)
				pending = append(pending, hedge)
				launched++
			}
		case <-deadline.C:
			err := &DeadlineError{Source: s.name, Replica: pending[0].label, Timeout: s.cfg.CallTimeout}
			for _, r := range pending {
				r.markDown(s.cfg, err)
				s.noteError()
			}
			discardLate()
			return nil, nil, launched, err
		}
	}
	return nil, nil, launched, last
}

// resumeCursor is the failover-aware stream: it counts rows as they are
// delivered, and when the underlying cursor dies mid-stream (anything but
// io.EOF) it reopens the same operation on another replica and skips the
// rows the consumer already has. Replicas serve identical snapshots — the
// property suites hold the federation to that — so resume-by-offset yields
// exactly the uncut stream.
type resumeCursor struct {
	s    *Source
	d    *Diagnostics
	open func(lqp.LQP) (rel.Cursor, error)
	cur  rel.Cursor
	r    *replica
	rows int64
	// head holds rows recovered past the skip offset when a resumed
	// replica's batch straddles it.
	head []rel.Tuple
}

func (c *resumeCursor) Schema() *rel.Schema { return c.cur.Schema() }

func (c *resumeCursor) Next() ([]rel.Tuple, error) {
	for {
		if len(c.head) > 0 {
			batch := c.head
			c.head = nil
			c.rows += int64(len(batch))
			return batch, nil
		}
		batch, err := c.cur.Next()
		if err == nil {
			c.rows += int64(len(batch))
			return batch, nil
		}
		if err == io.EOF {
			return nil, io.EOF
		}
		c.cur.Close()
		c.r.markDown(c.s.cfg, err)
		c.s.noteError()
		if ferr := c.failover(err); ferr != nil {
			return nil, ferr
		}
	}
}

// failover reopens the stream on the next healthy replica and fast-forwards
// past the rows already delivered. The skip consumes whole batches; a batch
// straddling the offset parks its tail in head.
func (c *resumeCursor) failover(cause error) error {
	attempts := 0
	last := cause
	for cycle := 0; cycle <= c.s.cfg.MaxRetries; cycle++ {
		for _, r := range c.s.candidates() {
			c.s.noteRetry(c.d)
			if attempts > 0 {
				c.s.backoff(attempts)
			}
			attempts++
			cur, err := invoke(c.s, r, c.open, closeCursor)
			if err != nil {
				r.markDown(c.s.cfg, err)
				c.s.noteError()
				last = err
				continue
			}
			head, err := skipRows(cur, c.rows)
			if err != nil {
				cur.Close()
				r.markDown(c.s.cfg, err)
				c.s.noteError()
				last = err
				continue
			}
			r.markUp()
			c.d.addReplica(c.s.name, r.label)
			c.cur, c.r, c.head = cur, r, head
			return nil
		}
	}
	return &ExhaustedError{Source: c.s.name, Attempts: attempts, Last: last}
}

// skipRows consumes n rows from cur, returning the tail of a straddling
// batch. A stream that ends (io.EOF) before n rows means the replica's
// snapshot diverges from what was already delivered — an error, never a
// silent truncation.
func skipRows(cur rel.Cursor, n int64) ([]rel.Tuple, error) {
	for n > 0 {
		batch, err := cur.Next()
		if err == io.EOF {
			return nil, errors.New("federation: resumed replica stream shorter than rows already delivered (snapshots diverge)")
		}
		if err != nil {
			return nil, err
		}
		if int64(len(batch)) <= n {
			n -= int64(len(batch))
			continue
		}
		return batch[n:], nil
	}
	return nil, nil
}

func (c *resumeCursor) Close() error { return c.cur.Close() }

// boundSource is a Source view that reports into one query's Diagnostics.
type boundSource struct {
	s *Source
	d *Diagnostics
}

func (b *boundSource) Name() string                                  { return b.s.name }
func (b *boundSource) Relations() ([]string, error)                  { return b.s.relations(b.d) }
func (b *boundSource) Execute(op lqp.Op) (*rel.Relation, error)      { return b.s.execute(b.d, op) }
func (b *boundSource) Open(op lqp.Op) (rel.Cursor, error)            { return b.s.openStream(b.d, op) }
func (b *boundSource) ExecutePlan(p lqp.Plan) (*rel.Relation, error) { return b.s.executePlan(b.d, p) }
func (b *boundSource) OpenPlan(p lqp.Plan) (rel.Cursor, error)       { return b.s.openPlanStream(b.d, p) }
func (b *boundSource) Stats() ([]lqp.RelationStats, error)           { return b.s.stats(b.d) }
func (b *boundSource) Bind(d *Diagnostics) lqp.LQP                   { return &boundSource{s: b.s, d: d} }

var (
	_ lqp.LQP           = (*Source)(nil)
	_ lqp.Streamer      = (*Source)(nil)
	_ lqp.PlanRunner    = (*Source)(nil)
	_ lqp.PlanStreamer  = (*Source)(nil)
	_ lqp.StatsProvider = (*Source)(nil)
	_ Collectable       = (*Source)(nil)
	_ lqp.LQP           = (*boundSource)(nil)
	_ lqp.Streamer      = (*boundSource)(nil)
	_ lqp.PlanRunner    = (*boundSource)(nil)
	_ lqp.PlanStreamer  = (*boundSource)(nil)
	_ lqp.StatsProvider = (*boundSource)(nil)
	_ Collectable       = (*boundSource)(nil)
)
