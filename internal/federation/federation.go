// Package federation is the fault-tolerance layer between the Polygen Query
// Processor and its Local Query Processors: where the rest of the system
// treats each LQP as one assumed-healthy endpoint, this package maps each
// logical source name to N replica endpoints and hides their failures
// behind the same lqp.LQP interface the PQP already programs against.
//
// The pieces:
//
//   - Registry: the source registry. Each logical LQP name maps to a Source
//     over N replicas with per-replica health state, fed passively (every
//     transport error marks its replica) and actively (a periodic
//     health-check loop probing the wire "ping" kind through the Pinger
//     capability).
//   - Source: the resilient LQP wrapper. Every call gets a per-call
//     deadline; failures retry with exponential backoff plus seeded jitter
//     and fail over to the next healthy replica; a per-replica circuit
//     breaker stops hammering endpoints that keep failing; streaming opens
//     hedge the tail (a second replica's Open launches after a p95-based
//     delay from the replica's latency estimator, first winner cancels the
//     loser) and resume mid-stream cuts on another replica by row offset.
//     All LQP operations here are reads against replicated snapshots, so
//     every operation is safe to retry.
//   - Policy and Diagnostics: graceful degradation. Under PolicyFail an
//     exhausted source fails the query with a typed *ExhaustedError naming
//     it; under PolicyPartial the PQP drops that scatter leg and the
//     answer's source tags — the paper's audit trail — plus the query's
//     Diagnostics (missing sources, retries, hedges, replicas used) report
//     exactly what contributed.
//
// Everything here is proven by the fault-injection property suites
// (internal/faultinject, pqp's fault tests): under injected kills, hangs,
// latency spikes and mid-stream cuts, answers that arrive are cell-for-cell
// and tag-identical to the fault-free run.
package federation

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/stats"
)

// Policy selects how a query degrades when a source exhausts all replicas.
type Policy uint8

const (
	// PolicyFail fails the whole query with an *ExhaustedError naming the
	// exhausted source — the default: no silent data loss.
	PolicyFail Policy = iota
	// PolicyPartial drops the exhausted scatter leg and lets the query
	// answer from the sources that remain; the answer's source tags and
	// Diagnostics identify exactly what contributed.
	PolicyPartial
)

// String renders the policy as its flag value.
func (p Policy) String() string {
	if p == PolicyPartial {
		return "partial"
	}
	return "fail"
}

// ParsePolicy parses a policy flag value ("", "fail" or "partial").
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "fail":
		return PolicyFail, nil
	case "partial":
		return PolicyPartial, nil
	default:
		return PolicyFail, fmt.Errorf("federation: unknown degradation policy %q (want fail or partial)", s)
	}
}

// Pinger is the health-probe capability of an endpoint: one liveness round
// trip bounded by d. wire.Client implements it over the wire "ping" kind;
// faultinject.Flaky implements it with its fault schedule; endpoints
// without it are probed passively only (call failures mark them).
type Pinger interface {
	Ping(d time.Duration) error
}

// Config tunes a Registry and its Sources. The zero value serves with the
// defaults below.
type Config struct {
	// CallTimeout bounds every replica call (the per-call deadline). A
	// replica that neither answers nor errors within it counts as failed
	// and the call fails over. Default 10s.
	CallTimeout time.Duration
	// MaxRetries is how many extra passes over the replica set a call makes
	// after the first before giving up exhausted. Default 1 (every replica
	// is tried twice).
	MaxRetries int
	// BackoffBase / BackoffMax bound the exponential backoff between
	// retried attempts (base doubles per attempt, jittered, capped at max).
	// Defaults 5ms / 250ms.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// HedgeDelay is how long a streaming Open waits on the primary replica
	// before launching a hedge on the next one. 0 derives the delay from
	// the primary's latency estimator (its p95, floored at HedgeMin);
	// negative disables hedging.
	HedgeDelay time.Duration
	// HedgeMin floors the adaptive hedge delay. Default 1ms.
	HedgeMin time.Duration
	// BreakerThreshold is how many consecutive failures open a replica's
	// circuit breaker; BreakerCooldown is how long the breaker stays open
	// before the replica is probed again (half-open). Defaults 3 / 1s.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// ProbeInterval is the active health-check period. 0 disables active
	// probing (passive marking still applies).
	ProbeInterval time.Duration
	// ProbeTimeout bounds each health probe. Default min(CallTimeout, 1s).
	ProbeTimeout time.Duration
	// Seed fixes the backoff jitter, keeping chaos runs reproducible.
	Seed int64
	// Stats, when non-nil, receives error/retry/hedge counters and latency
	// observations per logical source (stats.Catalog.Faults).
	Stats *stats.Catalog
}

func (c Config) withDefaults() Config {
	if c.CallTimeout <= 0 {
		c.CallTimeout = 10 * time.Second
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 5 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 250 * time.Millisecond
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = time.Millisecond
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
		if c.CallTimeout < c.ProbeTimeout {
			c.ProbeTimeout = c.CallTimeout
		}
	}
	return c
}

// ExhaustedError reports that a call tried every replica of a source (with
// retries) and none answered. It is the typed error the degradation policy
// dispatches on: PolicyFail surfaces it to the caller naming the source;
// PolicyPartial converts it into a dropped scatter leg plus a Diagnostics
// entry.
type ExhaustedError struct {
	// Source is the logical LQP name whose replicas are exhausted.
	Source string
	// Attempts is how many replica calls were made in total.
	Attempts int
	// Last is the final replica's error.
	Last error
}

func (e *ExhaustedError) Error() string {
	return fmt.Sprintf("federation: source %s exhausted all replicas (%d attempts): %v", e.Source, e.Attempts, e.Last)
}

func (e *ExhaustedError) Unwrap() error { return e.Last }

// DeadlineError reports one replica call that outlived its per-call
// deadline — the replica may still be computing, but the federation has
// moved on.
type DeadlineError struct {
	Source  string
	Replica string
	Timeout time.Duration
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("federation: %s replica %s: call exceeded deadline %v", e.Source, e.Replica, e.Timeout)
}

// Diagnostics collects one query's fault-handling record: which sources
// went missing (PolicyPartial), how many retries and hedges fired, and
// which replica of each source actually contributed. The PQP binds one to
// every query it runs (federation-backed sources report into it through
// the Collectable capability) and returns it on the Result, so a degraded
// answer is always accompanied by an exact account of what it is missing.
// Safe for concurrent use — scatter legs report from parallel goroutines.
type Diagnostics struct {
	mu       sync.Mutex
	missing  map[string]bool
	retries  int
	hedges   int
	replicas map[string]map[string]bool
}

// NewDiagnostics returns an empty collector.
func NewDiagnostics() *Diagnostics { return &Diagnostics{} }

// AddMissing records a source whose scatter leg was dropped.
func (d *Diagnostics) AddMissing(source string) {
	if d == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.missing == nil {
		d.missing = make(map[string]bool)
	}
	d.missing[source] = true
}

// addRetry books n retried calls.
func (d *Diagnostics) addRetry(n int) {
	if d == nil || n <= 0 {
		return
	}
	d.mu.Lock()
	d.retries += n
	d.mu.Unlock()
}

// addHedge books one launched hedge.
func (d *Diagnostics) addHedge() {
	if d == nil {
		return
	}
	d.mu.Lock()
	d.hedges++
	d.mu.Unlock()
}

// addReplica records that source's call was served by the labeled replica.
func (d *Diagnostics) addReplica(source, label string) {
	if d == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.replicas == nil {
		d.replicas = make(map[string]map[string]bool)
	}
	set := d.replicas[source]
	if set == nil {
		set = make(map[string]bool)
		d.replicas[source] = set
	}
	set[label] = true
}

// Report is the flat, wire-friendly form of a query's diagnostics.
type Report struct {
	// Missing lists the sources whose scatter legs were dropped
	// (PolicyPartial), sorted. Empty means every source contributed.
	Missing []string
	// Retries / Hedges count retried calls and launched hedges.
	Retries int
	Hedges  int
	// Replicas maps each contributing source to the sorted labels of the
	// replicas that served it.
	Replicas map[string][]string
}

// Degraded reports whether the answer is missing any source.
func (r Report) Degraded() bool { return len(r.Missing) > 0 }

// Report snapshots the collector. A nil collector reports a zero Report.
func (d *Diagnostics) Report() Report {
	if d == nil {
		return Report{}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	var rep Report
	for s := range d.missing {
		rep.Missing = append(rep.Missing, s)
	}
	sort.Strings(rep.Missing)
	rep.Retries = d.retries
	rep.Hedges = d.hedges
	if len(d.replicas) > 0 {
		rep.Replicas = make(map[string][]string, len(d.replicas))
		for s, set := range d.replicas {
			labels := make([]string, 0, len(set))
			for l := range set {
				labels = append(labels, l)
			}
			sort.Strings(labels)
			rep.Replicas[s] = labels
		}
	}
	return rep
}
