package federation

// This file is the source registry: the map from logical LQP names to
// replica sets that the mediator (or any PQP embedder) builds at startup,
// plus the active health-check loop that probes every replica's Pinger
// capability on a fixed period and feeds the per-replica health state that
// call routing reads.

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/lqp"
)

// Addresser is implemented by endpoints that know their network address
// (wire.Client does); the registry uses it to label replicas in health
// snapshots and diagnostics. Endpoints without it are labeled name#index.
type Addresser interface {
	Addr() string
}

// Registry maps logical source names to their replicated Sources and runs
// the active health-check loop. Build it once at startup, Add every
// source, then hand LQPs() to the PQP — the federation is transparent from
// there on.
type Registry struct {
	cfg Config

	mu         sync.Mutex
	order      []string
	sources    map[string]*Source
	shardOrder []string
	sharded    map[string]*ShardedSource

	stop    chan struct{}
	stopped sync.WaitGroup
	started bool
}

// NewRegistry returns an empty registry with cfg's defaults applied.
func NewRegistry(cfg Config) *Registry {
	return &Registry{
		cfg:     cfg.withDefaults(),
		sources: make(map[string]*Source),
		sharded: make(map[string]*ShardedSource),
	}
}

// Config returns the registry's effective (default-applied) configuration.
func (g *Registry) Config() Config { return g.cfg }

// Add registers a logical source backed by the given replicas (at least
// one) and returns its Source. Replica order is preference order: calls
// route to the first healthy one. Adding a name twice replaces it.
func (g *Registry) Add(name string, replicas ...lqp.LQP) *Source {
	reps := make([]*replica, len(replicas))
	for i, l := range replicas {
		label := fmt.Sprintf("%s#%d", name, i)
		if a, ok := l.(Addresser); ok {
			label = a.Addr()
		}
		reps[i] = &replica{label: label, l: l, healthy: true}
	}
	s := newSource(name, g.cfg, reps)
	g.mu.Lock()
	if _, exists := g.sources[name]; !exists {
		g.order = append(g.order, name)
	}
	g.sources[name] = s
	g.mu.Unlock()
	return s
}

// AddSharded registers a logical source horizontally partitioned across
// len(shards) shard slices, each backed by its own replica set (so every
// shard is itself fault-tolerant: replicated, health-checked, retried).
// Shard i must serve the slice federation.Slice(db, i, len(shards)) of the
// logical catalog; the returned ShardedSource scatters operations across
// the shards and gathers one logical answer. Adding a name twice replaces
// it. The shard Sources are registered for probing and health reporting
// (under the logical name) but only the logical source appears in LQPs().
func (g *Registry) AddSharded(name string, shards ...[]lqp.LQP) *ShardedSource {
	members := make([]*Source, len(shards))
	for i, replicas := range shards {
		label := fmt.Sprintf("%s[%d/%d]", name, i, len(shards))
		reps := make([]*replica, len(replicas))
		for j, l := range replicas {
			rlabel := fmt.Sprintf("%s#%d", label, j)
			if a, ok := l.(Addresser); ok {
				rlabel = a.Addr()
			}
			reps[j] = &replica{label: rlabel, l: l, healthy: true}
		}
		members[i] = newSource(label, g.cfg, reps)
	}
	s := newShardedSource(name, members)
	g.mu.Lock()
	if _, exists := g.sharded[name]; !exists {
		g.shardOrder = append(g.shardOrder, name)
	}
	g.sharded[name] = s
	g.mu.Unlock()
	return s
}

// Source returns the named source.
func (g *Registry) Source(name string) (*Source, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	s, ok := g.sources[name]
	return s, ok
}

// Sharded returns the named sharded source.
func (g *Registry) Sharded(name string) (*ShardedSource, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	s, ok := g.sharded[name]
	return s, ok
}

// LQPs returns the logical-name → resilient-LQP map the PQP consumes.
// Sharded sources appear under their logical name only — the shard members
// are an implementation detail of the scatter-gather.
func (g *Registry) LQPs() map[string]lqp.LQP {
	g.mu.Lock()
	defer g.mu.Unlock()
	m := make(map[string]lqp.LQP, len(g.sources)+len(g.sharded))
	for name, s := range g.sources {
		m[name] = s
	}
	for name, s := range g.sharded {
		m[name] = s
	}
	return m
}

// namedSource pairs one probe/health unit with the logical source name it
// reports under (a shard member's own name carries the shard suffix; its
// health rows belong to the logical source).
type namedSource struct {
	logical string
	s       *Source
}

// snapshotSources lists every Source under the registry — plain ones in
// registration order, then every sharded source's members in shard order —
// with the logical name each reports under.
func (g *Registry) snapshotSources() []namedSource {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]namedSource, 0, len(g.sources)+len(g.sharded))
	for _, name := range g.order {
		out = append(out, namedSource{logical: name, s: g.sources[name]})
	}
	for _, name := range g.shardOrder {
		for _, m := range g.sharded[name].shards {
			out = append(out, namedSource{logical: name, s: m})
		}
	}
	return out
}

// Start launches the active health-check loop (a no-op when
// Config.ProbeInterval is zero or the loop is already running). Stop it
// with Stop.
func (g *Registry) Start() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.started || g.cfg.ProbeInterval <= 0 {
		return
	}
	g.started = true
	g.stop = make(chan struct{})
	g.stopped.Add(1)
	go g.probeLoop()
}

// Stop halts the health-check loop and waits for in-flight probes.
func (g *Registry) Stop() {
	g.mu.Lock()
	if !g.started {
		g.mu.Unlock()
		return
	}
	g.started = false
	stop := g.stop
	g.mu.Unlock()
	close(stop)
	g.stopped.Wait()
}

func (g *Registry) probeLoop() {
	defer g.stopped.Done()
	ticker := time.NewTicker(g.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-ticker.C:
			g.ProbeAll()
		}
	}
}

// ProbeAll probes every replica of every source once, concurrently, and
// returns when all probes have answered or timed out. The loop calls it on
// each tick; tests and operators can call it directly for an on-demand
// sweep.
func (g *Registry) ProbeAll() {
	var wg sync.WaitGroup
	for _, ns := range g.snapshotSources() {
		s := ns.s
		for _, r := range s.reps {
			p, ok := r.l.(Pinger)
			if !ok {
				continue // passive marking only
			}
			wg.Add(1)
			go func(s *Source, r *replica, p Pinger) {
				defer wg.Done()
				if err := probe(p, g.cfg.ProbeTimeout); err != nil {
					r.markDown(s.cfg, err)
					s.noteError()
				} else {
					r.markUp()
				}
			}(s, r, p)
		}
	}
	wg.Wait()
}

// probe runs one ping under its own deadline, guarding against Pinger
// implementations that ignore the passed bound. A probe abandoned at the
// deadline finishes on its own goroutine.
func probe(p Pinger, timeout time.Duration) error {
	ch := make(chan error, 1)
	go func() { ch <- p.Ping(timeout) }()
	timer := time.NewTimer(timeout + timeout/2)
	defer timer.Stop()
	select {
	case err := <-ch:
		return err
	case <-timer.C:
		return fmt.Errorf("federation: health probe exceeded %v", timeout)
	}
}

// ReplicaHealth is one replica's state in a registry snapshot.
type ReplicaHealth struct {
	// Source is the logical name; Replica the endpoint label.
	Source  string
	Replica string
	// Healthy is the last-known liveness; BreakerOpen whether the circuit
	// breaker is currently rejecting calls.
	Healthy     bool
	BreakerOpen bool
	// LastError is the most recent failure ("" when none).
	LastError string
	// Calls, MeanLatency and P95 read the replica's latency estimator (the
	// one that places hedges): observed successful calls, their EWMA mean,
	// and the mean+3×deviation tail estimate. Zero before any call.
	Calls       int64
	MeanLatency time.Duration
	P95         time.Duration
}

// Health snapshots every replica's state, sources in registration order
// (plain sources first, then sharded ones shard by shard). Shard members'
// rows report under the logical source name; their replica labels carry the
// shard suffix.
func (g *Registry) Health() []ReplicaHealth {
	now := time.Now()
	var out []ReplicaHealth
	for _, ns := range g.snapshotSources() {
		for _, r := range ns.s.reps {
			r.mu.Lock()
			h := ReplicaHealth{
				Source:      ns.logical,
				Replica:     r.label,
				Healthy:     r.healthy,
				BreakerOpen: !r.openUntil.IsZero() && now.Before(r.openUntil),
			}
			if r.lastErr != nil {
				h.LastError = r.lastErr.Error()
			}
			r.mu.Unlock()
			// The estimator locks internally; read it outside r.mu.
			h.Calls = r.est.Count()
			h.MeanLatency = r.est.Mean()
			h.P95 = r.est.P95()
			out = append(out, h)
		}
	}
	return out
}

// ShardInfo is one (shard, replica) pair of a sharded source in a registry
// snapshot: where the shard lives, whether it is up, and how many rows it
// has served into gathered answers.
type ShardInfo struct {
	// Source is the logical name; Shard indexes it among Shards slices.
	Source string
	Shard  int
	Shards int
	// Replica is the endpoint label of one of the shard's replicas.
	Replica string
	// Healthy is the replica's last-known liveness.
	Healthy bool
	// Rows counts the rows this shard has delivered into gathered answers
	// (shared across the shard's replicas — the scatter meters the shard
	// leg, not the endpoint that happened to serve it).
	Rows int64
}

// Shards snapshots the shard map of every sharded source, in registration
// order, one row per (shard, replica). Registries without sharded sources
// return nothing — V$SHARD is empty in an unsharded federation.
func (g *Registry) Shards() []ShardInfo {
	g.mu.Lock()
	names := append([]string(nil), g.shardOrder...)
	srcs := make([]*ShardedSource, len(names))
	for i, name := range names {
		srcs[i] = g.sharded[name]
	}
	g.mu.Unlock()

	var out []ShardInfo
	for i, name := range names {
		s := srcs[i]
		for shard, m := range s.shards {
			rows := s.RowsServed(shard)
			for _, r := range m.reps {
				r.mu.Lock()
				healthy := r.healthy
				r.mu.Unlock()
				out = append(out, ShardInfo{
					Source:  name,
					Shard:   shard,
					Shards:  len(s.shards),
					Replica: r.label,
					Healthy: healthy,
					Rows:    rows,
				})
			}
		}
	}
	return out
}
