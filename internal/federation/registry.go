package federation

// This file is the source registry: the map from logical LQP names to
// replica sets that the mediator (or any PQP embedder) builds at startup,
// plus the active health-check loop that probes every replica's Pinger
// capability on a fixed period and feeds the per-replica health state that
// call routing reads.

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/lqp"
)

// Addresser is implemented by endpoints that know their network address
// (wire.Client does); the registry uses it to label replicas in health
// snapshots and diagnostics. Endpoints without it are labeled name#index.
type Addresser interface {
	Addr() string
}

// Registry maps logical source names to their replicated Sources and runs
// the active health-check loop. Build it once at startup, Add every
// source, then hand LQPs() to the PQP — the federation is transparent from
// there on.
type Registry struct {
	cfg Config

	mu      sync.Mutex
	order   []string
	sources map[string]*Source

	stop    chan struct{}
	stopped sync.WaitGroup
	started bool
}

// NewRegistry returns an empty registry with cfg's defaults applied.
func NewRegistry(cfg Config) *Registry {
	return &Registry{
		cfg:     cfg.withDefaults(),
		sources: make(map[string]*Source),
	}
}

// Config returns the registry's effective (default-applied) configuration.
func (g *Registry) Config() Config { return g.cfg }

// Add registers a logical source backed by the given replicas (at least
// one) and returns its Source. Replica order is preference order: calls
// route to the first healthy one. Adding a name twice replaces it.
func (g *Registry) Add(name string, replicas ...lqp.LQP) *Source {
	reps := make([]*replica, len(replicas))
	for i, l := range replicas {
		label := fmt.Sprintf("%s#%d", name, i)
		if a, ok := l.(Addresser); ok {
			label = a.Addr()
		}
		reps[i] = &replica{label: label, l: l, healthy: true}
	}
	s := newSource(name, g.cfg, reps)
	g.mu.Lock()
	if _, exists := g.sources[name]; !exists {
		g.order = append(g.order, name)
	}
	g.sources[name] = s
	g.mu.Unlock()
	return s
}

// Source returns the named source.
func (g *Registry) Source(name string) (*Source, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	s, ok := g.sources[name]
	return s, ok
}

// LQPs returns the logical-name → resilient-LQP map the PQP consumes.
func (g *Registry) LQPs() map[string]lqp.LQP {
	g.mu.Lock()
	defer g.mu.Unlock()
	m := make(map[string]lqp.LQP, len(g.sources))
	for name, s := range g.sources {
		m[name] = s
	}
	return m
}

// Start launches the active health-check loop (a no-op when
// Config.ProbeInterval is zero or the loop is already running). Stop it
// with Stop.
func (g *Registry) Start() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.started || g.cfg.ProbeInterval <= 0 {
		return
	}
	g.started = true
	g.stop = make(chan struct{})
	g.stopped.Add(1)
	go g.probeLoop()
}

// Stop halts the health-check loop and waits for in-flight probes.
func (g *Registry) Stop() {
	g.mu.Lock()
	if !g.started {
		g.mu.Unlock()
		return
	}
	g.started = false
	stop := g.stop
	g.mu.Unlock()
	close(stop)
	g.stopped.Wait()
}

func (g *Registry) probeLoop() {
	defer g.stopped.Done()
	ticker := time.NewTicker(g.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-ticker.C:
			g.ProbeAll()
		}
	}
}

// ProbeAll probes every replica of every source once, concurrently, and
// returns when all probes have answered or timed out. The loop calls it on
// each tick; tests and operators can call it directly for an on-demand
// sweep.
func (g *Registry) ProbeAll() {
	g.mu.Lock()
	sources := make([]*Source, 0, len(g.sources))
	for _, name := range g.order {
		sources = append(sources, g.sources[name])
	}
	g.mu.Unlock()

	var wg sync.WaitGroup
	for _, s := range sources {
		for _, r := range s.reps {
			p, ok := r.l.(Pinger)
			if !ok {
				continue // passive marking only
			}
			wg.Add(1)
			go func(s *Source, r *replica, p Pinger) {
				defer wg.Done()
				if err := probe(p, g.cfg.ProbeTimeout); err != nil {
					r.markDown(s.cfg, err)
					s.noteError()
				} else {
					r.markUp()
				}
			}(s, r, p)
		}
	}
	wg.Wait()
}

// probe runs one ping under its own deadline, guarding against Pinger
// implementations that ignore the passed bound. A probe abandoned at the
// deadline finishes on its own goroutine.
func probe(p Pinger, timeout time.Duration) error {
	ch := make(chan error, 1)
	go func() { ch <- p.Ping(timeout) }()
	timer := time.NewTimer(timeout + timeout/2)
	defer timer.Stop()
	select {
	case err := <-ch:
		return err
	case <-timer.C:
		return fmt.Errorf("federation: health probe exceeded %v", timeout)
	}
}

// ReplicaHealth is one replica's state in a registry snapshot.
type ReplicaHealth struct {
	// Source is the logical name; Replica the endpoint label.
	Source  string
	Replica string
	// Healthy is the last-known liveness; BreakerOpen whether the circuit
	// breaker is currently rejecting calls.
	Healthy     bool
	BreakerOpen bool
	// LastError is the most recent failure ("" when none).
	LastError string
	// Calls, MeanLatency and P95 read the replica's latency estimator (the
	// one that places hedges): observed successful calls, their EWMA mean,
	// and the mean+3×deviation tail estimate. Zero before any call.
	Calls       int64
	MeanLatency time.Duration
	P95         time.Duration
}

// Health snapshots every replica's state, sources in registration order.
func (g *Registry) Health() []ReplicaHealth {
	g.mu.Lock()
	sources := make([]*Source, 0, len(g.sources))
	for _, name := range g.order {
		sources = append(sources, g.sources[name])
	}
	g.mu.Unlock()

	now := time.Now()
	var out []ReplicaHealth
	for _, s := range sources {
		for _, r := range s.reps {
			r.mu.Lock()
			h := ReplicaHealth{
				Source:      s.name,
				Replica:     r.label,
				Healthy:     r.healthy,
				BreakerOpen: !r.openUntil.IsZero() && now.Before(r.openUntil),
			}
			if r.lastErr != nil {
				h.LastError = r.lastErr.Error()
			}
			r.mu.Unlock()
			// The estimator locks internally; read it outside r.mu.
			h.Calls = r.est.Count()
			h.MeanLatency = r.est.Mean()
			h.P95 = r.est.P95()
			out = append(out, h)
		}
	}
	return out
}
