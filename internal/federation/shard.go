package federation

// This file is the horizontal-partitioning layer: ShardMap places every
// tuple of a logical source on one of N shards by a canonical-ID hash, Slice
// cuts a catalog into the slice one lqpd shard serves, and ShardedSource
// presents the N shards as a single resilient lqp.LQP — operations scatter
// across all shards concurrently and the results gather into one stream
// that is cell-for-cell identical (up to row order, which every consumer
// treats as insignificant) to the unsharded answer.
//
// Placement must agree between processes — the mediator prunes against the
// same map the lqpd shards were sliced with — so the shard hash is FNV-1a
// over Value.Key(), the canonical, normalized rendering of a datum
// (-0 folds into 0, every kind is prefixed). rel.Seed cannot serve here: it
// is deliberately per-process. The hash feeds rel.PartitionOf, the same
// multiply-shift range reduction the parallel engine partitions by, so
// engine partitioning and shard placement agree on which hashes co-locate.
//
// Gather is shard-major: shard 0's rows, then shard 1's, each leg prefetched
// on its own goroutine so all shards stream concurrently under a bounded
// number of in-flight batches. The order differs from the unsharded row
// order, but deterministically — the same shards in the same order — and
// the relational answer is a multiset: every property suite and every
// consumer compares sorted renderings.
//
// Duplicate semantics: a relation's rows deal to shards by their placement
// hash, so for Retrieve/Select/Restrict the shard slices partition the
// result multiset exactly and concatenation is the identity. Project
// eliminates duplicates per shard, but rows on different shards can project
// to the same value — exactly those cross-shard duplicates are eliminated at
// the gather (first occurrence in shard-major order wins, mirroring
// relalg.Project's insertion-order dedup).

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/lqp"
	"repro/internal/rel"
)

// FNV-1a constants (offset basis and prime) for the placement hash.
const (
	shardHashOffset = 0xCBF29CE484222325
	shardHashPrime  = 0x100000001B3
)

// shardPrefetchDepth bounds the batches buffered per shard leg of a
// scatter-gather stream: peak memory is shards x depth x batch.
const shardPrefetchDepth = 4

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= shardHashPrime
	}
	return h
}

// ShardHash returns the process-independent placement hash of one datum:
// FNV-1a over Value.Key(), the canonical normalized rendering.
func ShardHash(v rel.Value) uint64 {
	return fnvString(shardHashOffset, v.Key())
}

// TupleShardHash folds ShardHash over every cell of a tuple, for relations
// without a single-attribute placement key. The fold is framing-safe: each
// cell's Key() is self-delimiting (NUL-plus-kind prefixed).
func TupleShardHash(t rel.Tuple) uint64 {
	h := uint64(shardHashOffset)
	for _, v := range t {
		h = fnvString(h, v.Key())
	}
	return h
}

// ShardOf maps a placement hash to one of shards partitions via
// rel.PartitionOf.
func ShardOf(h uint64, shards int) int { return rel.PartitionOf(h, shards) }

// ShardMap is the placement contract of one logical source: how many shards
// its relations deal across, and per relation the attribute whose value
// places a tuple ("" or absent: the whole tuple hashes). Both sides of the
// federation derive it the same way — the lqpd shard from its catalog's
// declared keys (Slice), the mediator from the shards' statistics
// (ShardedSource.Stats) — so placement and pruning agree by construction.
type ShardMap struct {
	Shards int
	// Keys maps relation name to its single placement attribute; relations
	// with composite or undeclared keys hash the whole tuple.
	Keys map[string]string
}

// NewShardMap derives the placement map of db for the given shard count:
// relations with a single-attribute primary key place by that attribute,
// all others by whole-tuple hash.
func NewShardMap(db *catalog.Database, shards int) ShardMap {
	m := ShardMap{Shards: shards, Keys: make(map[string]string)}
	for _, name := range db.Relations() {
		if key, err := db.Key(name); err == nil && len(key) == 1 {
			m.Keys[name] = key[0]
		}
	}
	return m
}

// shardKeysOf extracts the placement-attribute map from relation statistics
// (the mediator-side counterpart of NewShardMap's catalog derivation).
func shardKeysOf(sts []lqp.RelationStats) map[string]string {
	keys := make(map[string]string, len(sts))
	for _, st := range sts {
		if len(st.Key) == 1 {
			keys[st.Name] = st.Key[0]
		}
	}
	return keys
}

// placement returns the shard-of-tuple function for one relation under
// schema.
func (m ShardMap) placement(relation string, schema *rel.Schema) func(rel.Tuple) int {
	if attr := m.Keys[relation]; attr != "" {
		if ki := schema.Index(attr); ki >= 0 {
			return func(t rel.Tuple) int { return ShardOf(ShardHash(t[ki]), m.Shards) }
		}
	}
	return func(t rel.Tuple) int { return ShardOf(TupleShardHash(t), m.Shards) }
}

// PruneOp returns the single shard that can hold rows satisfying op, or -1
// when every shard must be consulted. Pruning fires only for an equality
// Select of a string constant against the relation's placement attribute:
// string equality is exact (Theta.Eval compares strings by content), so a
// matching row's placement hash is the constant's. Numeric constants never
// prune — Int and Float values compare equal across kinds but hash apart.
func (m ShardMap) PruneOp(op lqp.Op) int {
	if m.Shards <= 1 {
		return 0
	}
	if op.Kind != lqp.OpSelect || op.Theta != rel.ThetaEQ || op.Const.Kind() != rel.KindString {
		return -1
	}
	if attr := m.Keys[op.Relation]; attr == "" || attr != op.Attr {
		return -1
	}
	return ShardOf(ShardHash(op.Const), m.Shards)
}

// PrunePlan returns the single shard that can contribute rows to plan p, or
// -1. Any pruning Select in the pipeline prunes the whole plan: every
// surviving output row passes the equality, so every contributing base row
// carries the constant in the placement attribute and lives on its shard
// (attribute names are stable through Project/Restrict steps).
func (m ShardMap) PrunePlan(p lqp.Plan) int {
	if m.Shards <= 1 {
		return 0
	}
	attr := m.Keys[p.Relation()]
	if attr == "" {
		return -1
	}
	for _, op := range p.Ops {
		if op.Kind == lqp.OpSelect && op.Theta == rel.ThetaEQ && op.Attr == attr && op.Const.Kind() == rel.KindString {
			return ShardOf(ShardHash(op.Const), m.Shards)
		}
	}
	return -1
}

// Slice returns shard idx's horizontal slice of db: the same relations,
// schemas and declared keys, holding exactly the tuples NewShardMap places
// on idx, in base order. The union of all slices reconstructs db exactly;
// cmd/lqpd -shard serves one.
func Slice(db *catalog.Database, idx, shards int) (*catalog.Database, error) {
	if shards < 1 {
		return nil, fmt.Errorf("federation: shard count %d < 1", shards)
	}
	if idx < 0 || idx >= shards {
		return nil, fmt.Errorf("federation: shard index %d outside [0,%d)", idx, shards)
	}
	m := NewShardMap(db, shards)
	out := catalog.NewDatabase(db.Name())
	for _, name := range db.Relations() {
		schema, tuples, err := db.View(name)
		if err != nil {
			return nil, err
		}
		key, err := db.Key(name)
		if err != nil {
			return nil, err
		}
		if _, err := out.Create(name, schema, key...); err != nil {
			return nil, err
		}
		place := m.placement(name, schema)
		var keep []rel.Tuple
		for _, t := range tuples {
			if place(t) == idx {
				keep = append(keep, t)
			}
		}
		if err := out.Insert(name, keep...); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// planProjects reports whether the pipeline contains a Project — the only
// operation that introduces cross-shard duplicates (per-shard duplicate
// elimination cannot see a twin row on another shard).
func planProjects(p lqp.Plan) bool {
	for _, op := range p.Ops {
		if op.Kind == lqp.OpProject {
			return true
		}
	}
	return false
}

// ShardedSource presents N shard Sources (each itself a replicated,
// fault-tolerant Source) as one logical lqp.LQP with the full capability
// surface. Operations prune to a single shard when the placement map proves
// only one can answer; otherwise they scatter to every shard concurrently
// and gather shard-major. A shard that exhausts its replicas exhausts the
// logical source — the answer never silently drops a shard's rows, and the
// PolicyPartial machinery degrades whole sources exactly as for unsharded
// ones. Safe for concurrent use.
type ShardedSource struct {
	name   string
	shards []*Source
	rows   []atomic.Int64 // rows served per shard, for V$SHARD

	mu   sync.Mutex
	keys map[string]string // learned from Stats; see shardMap
}

func newShardedSource(name string, shards []*Source) *ShardedSource {
	return &ShardedSource{name: name, shards: shards, rows: make([]atomic.Int64, len(shards))}
}

// Name implements lqp.LQP: the logical source name — shard fan-out is
// invisible in the answer's source tags.
func (s *ShardedSource) Name() string { return s.name }

// ShardCount returns the number of shards.
func (s *ShardedSource) ShardCount() int { return len(s.shards) }

// ShardSource returns the i-th shard's replicated Source.
func (s *ShardedSource) ShardSource(i int) *Source { return s.shards[i] }

// RowsServed returns how many rows shard i has delivered into gathered
// answers.
func (s *ShardedSource) RowsServed(i int) int64 { return s.rows[i].Load() }

// Bind implements Collectable.
func (s *ShardedSource) Bind(d *Diagnostics) lqp.LQP { return &boundSharded{s: s, d: d} }

// shardMap returns the current placement map: shard count plus the
// placement attributes learned from the shards' statistics. Before any
// Stats call the key map is empty — placement-correct (pruning just never
// fires) but slower; polygend's stats collection primes it at startup.
func (s *ShardedSource) shardMap() ShardMap {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ShardMap{Shards: len(s.shards), Keys: s.keys}
}

// SetShardKeys installs the placement-attribute map directly (tests and
// embedders that know the catalog shape without a stats round trip).
func (s *ShardedSource) SetShardKeys(keys map[string]string) {
	s.mu.Lock()
	s.keys = keys
	s.mu.Unlock()
}

// wrap renames a shard-level exhaustion to the logical source: the
// degradation policy must drop (or fail on) the whole source, never a
// silent subset of its shards.
func (s *ShardedSource) wrap(err error) error {
	var ex *ExhaustedError
	if errors.As(err, &ex) && ex.Source != s.name {
		return &ExhaustedError{Source: s.name, Attempts: ex.Attempts, Last: err}
	}
	return err
}

// scatter fans call across every shard concurrently and returns the
// per-shard results in shard order, failing as a whole if any shard fails.
func scatter[T any](s *ShardedSource, call func(i int, m *Source) (T, error)) ([]T, error) {
	out := make([]T, len(s.shards))
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i := range s.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i], errs[i] = call(i, s.shards[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, s.wrap(err)
		}
	}
	return out, nil
}

// gather concatenates per-shard relations shard-major, optionally
// eliminating cross-shard duplicates (first occurrence wins, matching
// relalg.Project's insertion-order dedup).
func (s *ShardedSource) gather(parts []*rel.Relation, dedup bool) (*rel.Relation, error) {
	out := rel.NewRelation(parts[0].Name, parts[0].Schema)
	total := 0
	for i, p := range parts {
		if !p.Schema.Equal(out.Schema) {
			return nil, fmt.Errorf("federation %s: shard %d schema %s diverges from shard 0's %s", s.name, i, p.Schema, out.Schema)
		}
		total += len(p.Tuples)
		s.rows[i].Add(int64(len(p.Tuples)))
	}
	if !dedup {
		out.Tuples = make([]rel.Tuple, 0, total)
		for _, p := range parts {
			out.Tuples = append(out.Tuples, p.Tuples...)
		}
		return out, nil
	}
	seen := rel.NewBucketIndex(total)
	for _, p := range parts {
		for _, t := range p.Tuples {
			h := t.Hash64(rel.Seed)
			if _, dup := seen.Find(h, func(at int) bool { return out.Tuples[at].Identical(t) }); dup {
				continue
			}
			seen.Add(h, len(out.Tuples))
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out, nil
}

// Execute implements lqp.LQP.
func (s *ShardedSource) Execute(op lqp.Op) (*rel.Relation, error) { return s.execute(nil, op) }

func (s *ShardedSource) execute(d *Diagnostics, op lqp.Op) (*rel.Relation, error) {
	if t := s.shardMap().PruneOp(op); t >= 0 {
		r, err := s.shards[t].execute(d, op)
		if err != nil {
			return nil, s.wrap(err)
		}
		s.rows[t].Add(int64(len(r.Tuples)))
		return r, nil
	}
	parts, err := scatter(s, func(_ int, m *Source) (*rel.Relation, error) { return m.execute(d, op) })
	if err != nil {
		return nil, err
	}
	return s.gather(parts, op.Kind == lqp.OpProject)
}

// ExecutePlan implements lqp.PlanRunner: pushed plans scatter too, so
// pushdown savings multiply by the fan-out instead of being lost.
func (s *ShardedSource) ExecutePlan(p lqp.Plan) (*rel.Relation, error) { return s.executePlan(nil, p) }

func (s *ShardedSource) executePlan(d *Diagnostics, p lqp.Plan) (*rel.Relation, error) {
	if t := s.shardMap().PrunePlan(p); t >= 0 {
		r, err := s.shards[t].executePlan(d, p)
		if err != nil {
			return nil, s.wrap(err)
		}
		s.rows[t].Add(int64(len(r.Tuples)))
		return r, nil
	}
	parts, err := scatter(s, func(_ int, m *Source) (*rel.Relation, error) { return m.executePlan(d, p) })
	if err != nil {
		return nil, err
	}
	return s.gather(parts, planProjects(p))
}

// Relations implements lqp.LQP: every shard serves the same relation set,
// so the first shard that answers speaks for all.
func (s *ShardedSource) Relations() ([]string, error) { return s.relations(nil) }

func (s *ShardedSource) relations(d *Diagnostics) ([]string, error) {
	var last error
	for _, m := range s.shards {
		names, err := m.relations(d)
		if err == nil {
			return names, nil
		}
		last = err
	}
	if last == nil {
		last = errors.New("federation: no shards configured")
	}
	return nil, s.wrap(last)
}

// Stats implements lqp.StatsProvider: per-relation cardinalities sum across
// shards (columns and keys agree by construction), so the cost model sees
// the logical relation sizes. As a side effect the placement-attribute map
// refreshes from the declared keys.
func (s *ShardedSource) Stats() ([]lqp.RelationStats, error) { return s.stats(nil) }

func (s *ShardedSource) stats(d *Diagnostics) ([]lqp.RelationStats, error) {
	parts, err := scatter(s, func(_ int, m *Source) ([]lqp.RelationStats, error) { return m.stats(d) })
	if err != nil {
		return nil, err
	}
	var merged []lqp.RelationStats
	at := make(map[string]int)
	for _, sts := range parts {
		for _, st := range sts {
			if i, ok := at[st.Name]; ok {
				merged[i].Rows += st.Rows
				continue
			}
			at[st.Name] = len(merged)
			merged = append(merged, st)
		}
	}
	s.SetShardKeys(shardKeysOf(merged))
	return merged, nil
}

// Open implements lqp.Streamer: opens scatter to every shard concurrently
// (each leg prefetched on its own goroutine, resuming mid-stream failures on
// its shard's replicas) and the gathered cursor streams the legs
// shard-major under bounded memory.
func (s *ShardedSource) Open(op lqp.Op) (rel.Cursor, error) { return s.openStream(nil, op) }

func (s *ShardedSource) openStream(d *Diagnostics, op lqp.Op) (rel.Cursor, error) {
	return s.openScatter(d, s.shardMap().PruneOp(op), op.Kind == lqp.OpProject,
		func(m *Source) (rel.Cursor, error) { return m.openStream(d, op) })
}

// OpenPlan implements lqp.PlanStreamer.
func (s *ShardedSource) OpenPlan(p lqp.Plan) (rel.Cursor, error) { return s.openPlanStream(nil, p) }

func (s *ShardedSource) openPlanStream(d *Diagnostics, p lqp.Plan) (rel.Cursor, error) {
	return s.openScatter(d, s.shardMap().PrunePlan(p), planProjects(p),
		func(m *Source) (rel.Cursor, error) { return m.openPlanStream(d, p) })
}

// openScatter opens the stream on one pruned shard (target >= 0) or on all
// of them, gathered shard-major with cross-shard dedup when the pipeline
// projects.
func (s *ShardedSource) openScatter(d *Diagnostics, target int, dedup bool, open func(*Source) (rel.Cursor, error)) (rel.Cursor, error) {
	if target >= 0 {
		cur, err := open(s.shards[target])
		if err != nil {
			return nil, s.wrap(err)
		}
		return &shardCountCursor{s: s, in: cur, n: &s.rows[target]}, nil
	}
	legs, err := scatter(s, func(_ int, m *Source) (rel.Cursor, error) { return open(m) })
	if err != nil {
		for _, leg := range legs {
			if leg != nil {
				leg.Close()
			}
		}
		return nil, err
	}
	for i, leg := range legs[1:] {
		if !leg.Schema().Equal(legs[0].Schema()) {
			err := fmt.Errorf("federation %s: shard %d schema %s diverges from shard 0's %s", s.name, i+1, leg.Schema(), legs[0].Schema())
			for _, l := range legs {
				l.Close()
			}
			return nil, err
		}
	}
	for i := range legs {
		legs[i] = rel.Prefetch(&shardCountCursor{s: s, in: legs[i], n: &s.rows[i]}, shardPrefetchDepth)
	}
	var cur rel.Cursor = &gatherCursor{s: s, legs: legs}
	if dedup {
		cur = &shardDedupCursor{in: cur, seen: rel.NewBucketIndex(0)}
	}
	return cur, nil
}

// shardCountCursor meters rows as a shard leg produces them and renames
// shard-level exhaustion errors to the logical source.
type shardCountCursor struct {
	s  *ShardedSource
	in rel.Cursor
	n  *atomic.Int64
}

func (c *shardCountCursor) Schema() *rel.Schema { return c.in.Schema() }

func (c *shardCountCursor) Next() ([]rel.Tuple, error) {
	batch, err := c.in.Next()
	switch err {
	case nil:
		c.n.Add(int64(len(batch)))
	case io.EOF:
	default:
		err = c.s.wrap(err)
	}
	return batch, err
}

func (c *shardCountCursor) Close() error { return c.in.Close() }

// gatherCursor streams the shard legs in shard-major order: leg 0 to
// exhaustion, then leg 1, and so on. The legs are prefetched, so later
// shards produce concurrently (up to the prefetch depth) while earlier ones
// drain. A leg error — a shard whose replicas are all gone mid-stream —
// fails the whole gather as the logical source.
type gatherCursor struct {
	s      *ShardedSource
	legs   []rel.Cursor
	at     int
	closed bool
}

func (g *gatherCursor) Schema() *rel.Schema { return g.legs[0].Schema() }

func (g *gatherCursor) Next() ([]rel.Tuple, error) {
	for g.at < len(g.legs) {
		batch, err := g.legs[g.at].Next()
		if err == nil {
			return batch, nil
		}
		if err != io.EOF {
			return nil, g.s.wrap(err)
		}
		g.at++
	}
	return nil, io.EOF
}

func (g *gatherCursor) Close() error {
	if g.closed {
		return nil
	}
	g.closed = true
	var first error
	for _, leg := range g.legs {
		if err := leg.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// shardDedupCursor eliminates cross-shard duplicates of a projected gather
// stream: first occurrence in stream order wins. It retains every kept
// tuple (the Cursor contract keeps batches valid and immutable), so its
// memory is bounded by the distinct result — the same bound the unsharded
// Project pays.
type shardDedupCursor struct {
	in   rel.Cursor
	seen rel.BucketIndex
	kept []rel.Tuple
}

func (c *shardDedupCursor) Schema() *rel.Schema { return c.in.Schema() }

func (c *shardDedupCursor) Next() ([]rel.Tuple, error) {
	for {
		batch, err := c.in.Next()
		if err != nil {
			return nil, err
		}
		out := make([]rel.Tuple, 0, len(batch))
		for _, t := range batch {
			h := t.Hash64(rel.Seed)
			if _, dup := c.seen.Find(h, func(at int) bool { return c.kept[at].Identical(t) }); dup {
				continue
			}
			c.seen.Add(h, len(c.kept))
			c.kept = append(c.kept, t)
			out = append(out, t)
		}
		if len(out) > 0 {
			return out, nil
		}
	}
}

func (c *shardDedupCursor) Close() error { return c.in.Close() }

// boundSharded is a ShardedSource view reporting into one query's
// Diagnostics.
type boundSharded struct {
	s *ShardedSource
	d *Diagnostics
}

func (b *boundSharded) Name() string                                  { return b.s.name }
func (b *boundSharded) Relations() ([]string, error)                  { return b.s.relations(b.d) }
func (b *boundSharded) Execute(op lqp.Op) (*rel.Relation, error)      { return b.s.execute(b.d, op) }
func (b *boundSharded) Open(op lqp.Op) (rel.Cursor, error)            { return b.s.openStream(b.d, op) }
func (b *boundSharded) ExecutePlan(p lqp.Plan) (*rel.Relation, error) { return b.s.executePlan(b.d, p) }
func (b *boundSharded) OpenPlan(p lqp.Plan) (rel.Cursor, error)       { return b.s.openPlanStream(b.d, p) }
func (b *boundSharded) Stats() ([]lqp.RelationStats, error)           { return b.s.stats(b.d) }
func (b *boundSharded) Bind(d *Diagnostics) lqp.LQP                   { return &boundSharded{s: b.s, d: d} }

var (
	_ lqp.LQP           = (*ShardedSource)(nil)
	_ lqp.Streamer      = (*ShardedSource)(nil)
	_ lqp.PlanRunner    = (*ShardedSource)(nil)
	_ lqp.PlanStreamer  = (*ShardedSource)(nil)
	_ lqp.StatsProvider = (*ShardedSource)(nil)
	_ Collectable       = (*ShardedSource)(nil)
	_ lqp.LQP           = (*boundSharded)(nil)
	_ lqp.Streamer      = (*boundSharded)(nil)
	_ lqp.PlanRunner    = (*boundSharded)(nil)
	_ lqp.PlanStreamer  = (*boundSharded)(nil)
	_ lqp.StatsProvider = (*boundSharded)(nil)
	_ Collectable       = (*boundSharded)(nil)
)
