package federation

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/faultinject"
	"repro/internal/lqp"
	"repro/internal/rel"
	"repro/internal/stats"
)

// testDB builds one local database with enough rows for several batches.
func testDB(rows int) *catalog.Database {
	db := catalog.NewDatabase("AD")
	db.MustCreate("ALUMNUS", rel.SchemaOf("AID#", "ANAME"), "AID#")
	tuples := make([]rel.Tuple, 0, rows)
	for i := 0; i < rows; i++ {
		tuples = append(tuples, rel.Tuple{
			rel.String(fmt.Sprintf("A%05d", i)),
			rel.String(fmt.Sprintf("name-%d", i)),
		})
	}
	if err := db.Insert("ALUMNUS", tuples...); err != nil {
		panic(err)
	}
	return db
}

// fake is a scriptable LQP: behave runs before every forwarded call (its
// error aborts the call), letting tests stage failures, hangs and slowness
// per call number.
type fake struct {
	inner  lqp.LQP
	calls  atomic.Int64
	behave func(n int64) error
}

func newFake(db *catalog.Database, behave func(n int64) error) *fake {
	return &fake{inner: lqp.NewLocal(db), behave: behave}
}

func (f *fake) gate() error {
	n := f.calls.Add(1)
	if f.behave == nil {
		return nil
	}
	return f.behave(n)
}

func (f *fake) Name() string { return f.inner.Name() }

func (f *fake) Relations() ([]string, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	return f.inner.Relations()
}

func (f *fake) Execute(op lqp.Op) (*rel.Relation, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	return f.inner.Execute(op)
}

func testConfig() Config {
	return Config{
		CallTimeout: 5 * time.Second,
		MaxRetries:  1,
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
		HedgeDelay:  -1, // off unless the test wants it
		Seed:        7,
	}.withDefaults()
}

func drain(t *testing.T, c rel.Cursor) *rel.Relation {
	t.Helper()
	r, err := rel.Drain(c)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	return r
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
		err  bool
	}{
		{"", PolicyFail, false},
		{"fail", PolicyFail, false},
		{"partial", PolicyPartial, false},
		{"bogus", PolicyFail, true},
	} {
		got, err := ParsePolicy(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("ParsePolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if PolicyPartial.String() != "partial" || PolicyFail.String() != "fail" {
		t.Errorf("String round trip broken")
	}
}

func TestFailoverToHealthyReplica(t *testing.T) {
	db := testDB(10)
	dead := newFake(db, func(int64) error { return errors.New("boom") })
	good := newFake(db, nil)

	g := NewRegistry(testConfig())
	s := g.Add("AD", dead, good)

	d := NewDiagnostics()
	r, err := s.Bind(d).Execute(lqp.Retrieve("ALUMNUS"))
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if r.Cardinality() != 10 {
		t.Errorf("cardinality = %d, want 10", r.Cardinality())
	}
	rep := d.Report()
	if rep.Retries != 1 {
		t.Errorf("retries = %d, want 1", rep.Retries)
	}
	if got := rep.Replicas["AD"]; len(got) != 1 || got[0] != "AD#1" {
		t.Errorf("replicas = %v, want [AD#1]", got)
	}

	// The dead replica is marked down, so the next call goes straight to
	// the healthy one — no retry booked.
	deadCalls := dead.calls.Load()
	d2 := NewDiagnostics()
	if _, err := s.Bind(d2).Execute(lqp.Retrieve("ALUMNUS")); err != nil {
		t.Fatalf("second Execute: %v", err)
	}
	if d2.Report().Retries != 0 {
		t.Errorf("second call retried %d times, want 0", d2.Report().Retries)
	}
	if dead.calls.Load() != deadCalls {
		t.Errorf("second call touched the dead replica")
	}
}

func TestExhaustedError(t *testing.T) {
	db := testDB(5)
	mk := func() lqp.LQP { return newFake(db, func(int64) error { return errors.New("boom") }) }
	cat := stats.NewCatalog()
	cfg := testConfig()
	cfg.Stats = cat
	g := NewRegistry(cfg)
	s := g.Add("AD", mk(), mk(), mk())

	_, err := s.Execute(lqp.Retrieve("ALUMNUS"))
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v, want *ExhaustedError", err)
	}
	if ex.Source != "AD" {
		t.Errorf("Source = %q", ex.Source)
	}
	// 3 replicas × (1 + MaxRetries) passes.
	if want := 3 * 2; ex.Attempts != want {
		t.Errorf("Attempts = %d, want %d", ex.Attempts, want)
	}
	fc := cat.Faults("AD")
	if fc.Errors != 6 || fc.Retries != 5 {
		t.Errorf("fault counters = %+v, want 6 errors, 5 retries", fc)
	}
}

func TestPerCallDeadline(t *testing.T) {
	db := testDB(5)
	hung := newFake(db, func(int64) error { time.Sleep(10 * time.Second); return nil })
	good := newFake(db, nil)
	cfg := testConfig()
	cfg.CallTimeout = 50 * time.Millisecond
	g := NewRegistry(cfg)
	s := g.Add("AD", hung, good)

	start := time.Now()
	r, err := s.Execute(lqp.Retrieve("ALUMNUS"))
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if r.Cardinality() != 5 {
		t.Errorf("cardinality = %d", r.Cardinality())
	}
	// One blown deadline + one fast call: far below the 10s hang.
	if e := time.Since(start); e > 2*time.Second {
		t.Errorf("call took %v despite per-call deadline", e)
	}
	for _, h := range g.Health() {
		if h.Replica == "AD#0" && h.Healthy {
			t.Errorf("hung replica still marked healthy")
		}
	}
}

func TestDeadlineErrorWhenAllHang(t *testing.T) {
	db := testDB(5)
	mk := func() lqp.LQP {
		return newFake(db, func(int64) error { time.Sleep(10 * time.Second); return nil })
	}
	cfg := testConfig()
	cfg.CallTimeout = 30 * time.Millisecond
	cfg.MaxRetries = 0
	g := NewRegistry(cfg)
	s := g.Add("AD", mk())

	_, err := s.Execute(lqp.Retrieve("ALUMNUS"))
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v, want *ExhaustedError", err)
	}
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("exhaustion cause = %v, want *DeadlineError", ex.Last)
	}
}

func TestHedgedOpenWinsOnSlowPrimary(t *testing.T) {
	db := testDB(50)
	slow := newFake(db, func(int64) error { time.Sleep(300 * time.Millisecond); return nil })
	fast := newFake(db, nil)
	cfg := testConfig()
	cfg.HedgeDelay = 5 * time.Millisecond
	cat := stats.NewCatalog()
	cfg.Stats = cat
	g := NewRegistry(cfg)
	s := g.Add("AD", slow, fast)

	d := NewDiagnostics()
	bound := s.Bind(d).(lqp.Streamer)
	start := time.Now()
	cur, err := bound.Open(lqp.Retrieve("ALUMNUS"))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if e := time.Since(start); e > 200*time.Millisecond {
		t.Errorf("hedged open took %v, want well under the primary's 300ms", e)
	}
	if got := drain(t, cur).Cardinality(); got != 50 {
		t.Errorf("cardinality = %d", got)
	}
	rep := d.Report()
	if rep.Hedges != 1 {
		t.Errorf("hedges = %d, want 1", rep.Hedges)
	}
	if got := rep.Replicas["AD"]; len(got) != 1 || got[0] != "AD#1" {
		t.Errorf("winning replica = %v, want [AD#1]", got)
	}
	if cat.Faults("AD").Hedges != 1 {
		t.Errorf("catalog hedge counter = %d", cat.Faults("AD").Hedges)
	}
}

func TestAdaptiveHedgeDelayFromEstimator(t *testing.T) {
	db := testDB(5)
	cfg := testConfig()
	cfg.HedgeDelay = 0 // adaptive
	g := NewRegistry(cfg)
	s := g.Add("AD", newFake(db, nil), newFake(db, nil))

	// No estimate yet: adaptive hedging stays off.
	if hd := s.hedgeDelay(s.reps[0]); hd >= 0 {
		t.Errorf("hedge delay with empty estimator = %v, want disabled", hd)
	}
	s.reps[0].est.Observe(20 * time.Millisecond)
	hd := s.hedgeDelay(s.reps[0])
	if hd < cfg.HedgeMin || hd > cfg.CallTimeout {
		t.Errorf("adaptive hedge delay = %v out of range", hd)
	}
}

func TestMidStreamResume(t *testing.T) {
	const rows = 700 // several DefaultBatchSize batches
	db := testDB(rows)

	// Fault-free baseline.
	want, err := lqp.NewLocal(db).Execute(lqp.Retrieve("ALUMNUS"))
	if err != nil {
		t.Fatal(err)
	}

	// Replica 0 cuts every stream after one delivered batch; replica 1 is
	// clean. The resumed stream must be exactly the uncut one.
	cut := faultinject.New(lqp.NewLocal(db), faultinject.Profile{CutEvery: 1, CutAfter: 1})
	g := NewRegistry(testConfig())
	s := g.Add("AD", cut, lqp.NewLocal(db))

	d := NewDiagnostics()
	cur, err := s.Bind(d).(lqp.Streamer).Open(lqp.Retrieve("ALUMNUS"))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	got := drain(t, cur)
	if got.Cardinality() != rows {
		t.Fatalf("resumed stream has %d rows, want %d", got.Cardinality(), rows)
	}
	for i, tup := range got.Tuples {
		if !tup.Equal(want.Tuples[i]) {
			t.Fatalf("row %d diverges after resume: %v != %v", i, tup, want.Tuples[i])
		}
	}
	if _, _, _, cuts := cut.Injected(); cuts != 1 {
		t.Errorf("injected cuts = %d, want 1 (chaos must actually fire)", cuts)
	}
	rep := d.Report()
	if got := rep.Replicas["AD"]; len(got) != 2 {
		t.Errorf("contributing replicas = %v, want both", got)
	}
	if rep.Retries == 0 {
		t.Errorf("resume booked no retries")
	}
}

func TestSkipRowsStraddlingBatch(t *testing.T) {
	db := testDB(600)
	cur, err := lqp.OpenLQP(lqp.NewLocal(db), lqp.Retrieve("ALUMNUS"))
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	head, err := skipRows(cur, 300) // mid-batch offset (batches of 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(head) != 212 { // 512-300
		t.Fatalf("straddling head = %d rows, want 212", len(head))
	}
	if head[0][0] != rel.String("A00300") {
		t.Errorf("head starts at %v, want row 300", head[0][0])
	}
	rest := 0
	for {
		b, err := cur.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		rest += len(b)
	}
	if len(head)+rest != 300 {
		t.Errorf("resumed rows = %d, want 300", len(head)+rest)
	}
}

func TestSkipRowsDivergentSnapshot(t *testing.T) {
	db := testDB(10)
	cur, err := lqp.OpenLQP(lqp.NewLocal(db), lqp.Retrieve("ALUMNUS"))
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if _, err := skipRows(cur, 11); err == nil {
		t.Fatal("skip past the stream's end must error, not truncate silently")
	}
}

func TestCircuitBreakerShedsCalls(t *testing.T) {
	db := testDB(5)
	flaky := newFake(db, func(int64) error { return errors.New("boom") })
	good := newFake(db, nil)
	cfg := testConfig()
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = time.Hour
	cfg.MaxRetries = 0
	g := NewRegistry(cfg)
	s := g.Add("AD", flaky, good)

	// Two failures open the breaker...
	s.Execute(lqp.Retrieve("ALUMNUS"))
	s.reps[0].mu.Lock()
	s.reps[0].healthy = true // force it back into preference order
	s.reps[0].mu.Unlock()
	s.Execute(lqp.Retrieve("ALUMNUS"))

	open := false
	for _, h := range g.Health() {
		if h.Replica == "AD#0" {
			open = h.BreakerOpen
		}
	}
	if !open {
		t.Fatalf("breaker not open after %d consecutive failures", cfg.BreakerThreshold)
	}

	// ...and while open, calls never touch the broken replica.
	before := flaky.calls.Load()
	for i := 0; i < 5; i++ {
		if _, err := s.Execute(lqp.Retrieve("ALUMNUS")); err != nil {
			t.Fatalf("Execute with breaker open: %v", err)
		}
	}
	if flaky.calls.Load() != before {
		t.Errorf("breaker-open replica still received calls")
	}
}

func TestRegistryProbesMarkHealth(t *testing.T) {
	db := testDB(5)
	deadLocal := faultinject.New(lqp.NewLocal(db), faultinject.Profile{ErrEvery: 1})
	goodLocal := faultinject.New(lqp.NewLocal(db), faultinject.Profile{})
	cfg := testConfig()
	cfg.ProbeTimeout = 100 * time.Millisecond
	g := NewRegistry(cfg)
	g.Add("AD", deadLocal, goodLocal)

	g.ProbeAll()
	byLabel := map[string]ReplicaHealth{}
	for _, h := range g.Health() {
		byLabel[h.Replica] = h
	}
	if byLabel["AD#0"].Healthy {
		t.Errorf("dead replica probed healthy")
	}
	if byLabel["AD#0"].LastError == "" {
		t.Errorf("dead replica has no recorded probe error")
	}
	if !byLabel["AD#1"].Healthy {
		t.Errorf("good replica probed unhealthy")
	}

	// The periodic loop runs and stops cleanly.
	cfg.ProbeInterval = 5 * time.Millisecond
	g2 := NewRegistry(cfg)
	g2.Add("AD", deadLocal, goodLocal)
	g2.Start()
	time.Sleep(25 * time.Millisecond)
	g2.Stop()
}

func TestDiagnosticsReport(t *testing.T) {
	d := NewDiagnostics()
	d.AddMissing("MD")
	d.AddMissing("DD")
	d.AddMissing("MD")
	d.addRetry(2)
	d.addHedge()
	d.addReplica("FD", "b")
	d.addReplica("FD", "a")
	rep := d.Report()
	if len(rep.Missing) != 2 || rep.Missing[0] != "DD" || rep.Missing[1] != "MD" {
		t.Errorf("Missing = %v", rep.Missing)
	}
	if !rep.Degraded() {
		t.Errorf("Degraded() = false")
	}
	if rep.Retries != 2 || rep.Hedges != 1 {
		t.Errorf("counters = %d retries, %d hedges", rep.Retries, rep.Hedges)
	}
	if got := rep.Replicas["FD"]; len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Replicas = %v", got)
	}

	var nilDiag *Diagnostics
	nilDiag.AddMissing("x") // must not panic
	if nilDiag.Report().Degraded() {
		t.Errorf("nil diagnostics degraded")
	}
}

func TestSourceStatsAndRelations(t *testing.T) {
	db := testDB(7)
	g := NewRegistry(testConfig())
	s := g.Add("AD", newFake(db, func(int64) error { return errors.New("boom") }), lqp.NewLocal(db))

	rels, err := s.Relations()
	if err != nil || len(rels) != 1 || rels[0] != "ALUMNUS" {
		t.Errorf("Relations = %v, %v", rels, err)
	}
	st, err := s.Stats()
	if err != nil || len(st) != 1 || st[0].Rows != 7 {
		t.Errorf("Stats = %+v, %v", st, err)
	}
	r, err := s.ExecutePlan(lqp.Plan{Ops: []lqp.Op{lqp.Retrieve("ALUMNUS")}})
	if err != nil || r.Cardinality() != 7 {
		t.Errorf("ExecutePlan = %v, %v", r, err)
	}
}
