// Package relalg implements the classical (untagged) relational algebra over
// rel.Relation values: Select, Project, Cartesian Product, Union, Difference,
// and the derived Join and Intersect.
//
// It serves two roles in the reproduction:
//
//   - it is the execution engine inside each Local Query Processor, which the
//     paper requires to "behave as a local relational system" (§I); and
//   - it is the untagged baseline against which the polygen algebra's source
//     tagging overhead is measured (bench B-OV in DESIGN.md).
//
// Like the polygen algebra in package core, the baseline is hash-native:
// tuple identity is a 64-bit hash (rel.Tuple.Hash64) confirmed with Equal on
// collision, join probes hash the join value, and output rows are sliced
// from the relation's arena — so the B-OV overhead numbers compare tagging
// against tagging-free execution, not string keys against hash keys.
package relalg

import (
	"fmt"

	"repro/internal/rel"
)

// tupleIndex buckets tuple positions through the shared rel.BucketIndex,
// confirming candidates with Identical — the untagged counterpart of core's
// dataIndex.
type tupleIndex struct {
	rel.BucketIndex
}

func newTupleIndex(capacity int) tupleIndex {
	return tupleIndex{rel.NewBucketIndex(capacity)}
}

func (ix tupleIndex) find(tuples []rel.Tuple, t rel.Tuple, h uint64) (int, bool) {
	return ix.Find(h, func(at int) bool { return tuples[at].Identical(t) })
}

func (ix tupleIndex) add(h uint64, pos int) { ix.Add(h, pos) }

// Select returns the tuples of r for which attr θ constant holds.
func Select(r *rel.Relation, attr string, theta rel.Theta, constant rel.Value) (*rel.Relation, error) {
	ci, err := r.Col(attr)
	if err != nil {
		return nil, err
	}
	out := rel.NewRelation("", r.Schema)
	for _, t := range r.Tuples {
		if theta.Eval(t[ci], constant) {
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out, nil
}

// Restrict returns the tuples of r for which x θ y holds between two of r's
// attributes.
func Restrict(r *rel.Relation, x string, theta rel.Theta, y string) (*rel.Relation, error) {
	xi, err := r.Col(x)
	if err != nil {
		return nil, err
	}
	yi, err := r.Col(y)
	if err != nil {
		return nil, err
	}
	out := rel.NewRelation("", r.Schema)
	for _, t := range r.Tuples {
		if theta.Eval(t[xi], t[yi]) {
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out, nil
}

// Project returns r restricted to the named attributes, with duplicate
// tuples eliminated (set semantics).
func Project(r *rel.Relation, attrs []string) (*rel.Relation, error) {
	idx := make([]int, len(attrs))
	outAttrs := make([]rel.Attr, len(attrs))
	for i, a := range attrs {
		ci, err := r.Col(a)
		if err != nil {
			return nil, err
		}
		idx[i] = ci
		outAttrs[i] = r.Schema.Attr(ci)
	}
	out := rel.NewRelation("", rel.NewSchema(outAttrs...))
	seen := newTupleIndex(len(r.Tuples))
	scratch := make(rel.Tuple, len(idx))
	for _, t := range r.Tuples {
		for i, ci := range idx {
			scratch[i] = t[ci]
		}
		h := scratch.Hash64(rel.Seed)
		if _, dup := seen.find(out.Tuples, scratch, h); dup {
			continue
		}
		row := out.NewRow(len(scratch))
		copy(row, scratch)
		seen.add(h, len(out.Tuples))
		out.Tuples = append(out.Tuples, row)
	}
	return out, nil
}

// Product returns the Cartesian product of a and b. Attribute names of b that
// collide with names of a are disambiguated with the relation name or a
// positional suffix, mirroring how the polygen processor keeps both columns
// until an explicit Coalesce.
func Product(a, b *rel.Relation) (*rel.Relation, error) {
	attrs := a.Schema.Attrs()
	for i := 0; i < b.Schema.Len(); i++ {
		at := b.Schema.Attr(i)
		name := at.Name
		if containsAttr(attrs, name) {
			name = disambiguate(attrs, b.Name, at.Name)
		}
		attrs = append(attrs, rel.Attr{Name: name, Kind: at.Kind})
	}
	out := rel.NewRelation("", rel.NewSchema(attrs...))
	for _, ta := range a.Tuples {
		for _, tb := range b.Tuples {
			row := out.NewRow(len(ta) + len(tb))
			copy(row, ta)
			copy(row[len(ta):], tb)
			out.Tuples = append(out.Tuples, row)
		}
	}
	return out, nil
}

func containsAttr(attrs []rel.Attr, name string) bool {
	for _, a := range attrs {
		if a.Name == name {
			return true
		}
	}
	return false
}

func disambiguate(attrs []rel.Attr, relName, attrName string) string {
	cand := attrName
	if relName != "" {
		cand = relName + "." + attrName
	}
	for i := 2; containsAttr(attrs, cand); i++ {
		cand = fmt.Sprintf("%s#%d", attrName, i)
	}
	return cand
}

// Union returns the set union of two union-compatible relations.
func Union(a, b *rel.Relation) (*rel.Relation, error) {
	if a.Degree() != b.Degree() {
		return nil, fmt.Errorf("relalg: union of degree %d with degree %d", a.Degree(), b.Degree())
	}
	out := rel.NewRelation("", a.Schema)
	seen := newTupleIndex(len(a.Tuples) + len(b.Tuples))
	for _, src := range [...]*rel.Relation{a, b} {
		for _, t := range src.Tuples {
			h := t.Hash64(rel.Seed)
			if _, dup := seen.find(out.Tuples, t, h); dup {
				continue
			}
			seen.add(h, len(out.Tuples))
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out, nil
}

// Difference returns the tuples of a not present in b.
func Difference(a, b *rel.Relation) (*rel.Relation, error) {
	if a.Degree() != b.Degree() {
		return nil, fmt.Errorf("relalg: difference of degree %d with degree %d", a.Degree(), b.Degree())
	}
	drop := newTupleIndex(len(b.Tuples))
	for i, t := range b.Tuples {
		drop.add(t.Hash64(rel.Seed), i)
	}
	out := rel.NewRelation("", a.Schema)
	seen := newTupleIndex(len(a.Tuples))
	for _, t := range a.Tuples {
		h := t.Hash64(rel.Seed)
		if _, gone := drop.find(b.Tuples, t, h); gone {
			continue
		}
		if _, dup := seen.find(out.Tuples, t, h); dup {
			continue
		}
		seen.add(h, len(out.Tuples))
		out.Tuples = append(out.Tuples, t)
	}
	return out, nil
}

// Intersect returns the tuples present in both a and b.
func Intersect(a, b *rel.Relation) (*rel.Relation, error) {
	if a.Degree() != b.Degree() {
		return nil, fmt.Errorf("relalg: intersect of degree %d with degree %d", a.Degree(), b.Degree())
	}
	keep := newTupleIndex(len(b.Tuples))
	for i, t := range b.Tuples {
		keep.add(t.Hash64(rel.Seed), i)
	}
	out := rel.NewRelation("", a.Schema)
	seen := newTupleIndex(len(a.Tuples))
	for _, t := range a.Tuples {
		h := t.Hash64(rel.Seed)
		if _, in := keep.find(b.Tuples, t, h); !in {
			continue
		}
		if _, dup := seen.find(out.Tuples, t, h); dup {
			continue
		}
		seen.add(h, len(out.Tuples))
		out.Tuples = append(out.Tuples, t)
	}
	return out, nil
}

// Join returns the equi-join of a and b on a.x = b.y, keeping a single join
// column (named after x), mirroring the polygen Join which coalesces the two
// join columns (paper, Tables 5 and 7). It is implemented as a hash join:
// the build side is bucketed by the join value's 64-bit hash and probe
// candidates are confirmed with Equal.
func Join(a *rel.Relation, x string, b *rel.Relation, y string) (*rel.Relation, error) {
	xi, err := a.Col(x)
	if err != nil {
		return nil, err
	}
	yi, err := b.Col(y)
	if err != nil {
		return nil, err
	}
	attrs := a.Schema.Attrs()
	var bKeep []int
	for i := 0; i < b.Schema.Len(); i++ {
		if i == yi {
			continue
		}
		at := b.Schema.Attr(i)
		name := at.Name
		if containsAttr(attrs, name) {
			name = disambiguate(attrs, b.Name, at.Name)
		}
		attrs = append(attrs, rel.Attr{Name: name, Kind: at.Kind})
		bKeep = append(bKeep, i)
	}
	out := rel.NewRelation("", rel.NewSchema(attrs...))

	index := make(map[uint64][]rel.Tuple, len(b.Tuples))
	for _, tb := range b.Tuples {
		if tb[yi].IsNull() {
			continue
		}
		h := tb[yi].Hash64(rel.Seed)
		index[h] = append(index[h], tb)
	}
	for _, ta := range a.Tuples {
		if ta[xi].IsNull() {
			continue
		}
		for _, tb := range index[ta[xi].Hash64(rel.Seed)] {
			if !tb[yi].Identical(ta[xi]) {
				continue // hash collision
			}
			row := out.NewRow(len(ta) + len(bKeep))[:0]
			row = append(row, ta...)
			for _, i := range bKeep {
				row = append(row, tb[i])
			}
			out.Tuples = append(out.Tuples, row)
		}
	}
	return out, nil
}
