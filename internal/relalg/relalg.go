// Package relalg implements the classical (untagged) relational algebra over
// rel.Relation values: Select, Project, Cartesian Product, Union, Difference,
// and the derived Join and Intersect.
//
// It serves two roles in the reproduction:
//
//   - it is the execution engine inside each Local Query Processor, which the
//     paper requires to "behave as a local relational system" (§I); and
//   - it is the untagged baseline against which the polygen algebra's source
//     tagging overhead is measured (bench B-OV in DESIGN.md).
package relalg

import (
	"fmt"

	"repro/internal/rel"
)

// Select returns the tuples of r for which attr θ constant holds.
func Select(r *rel.Relation, attr string, theta rel.Theta, constant rel.Value) (*rel.Relation, error) {
	ci, err := r.Col(attr)
	if err != nil {
		return nil, err
	}
	out := rel.NewRelation("", r.Schema)
	for _, t := range r.Tuples {
		if theta.Eval(t[ci], constant) {
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out, nil
}

// Restrict returns the tuples of r for which x θ y holds between two of r's
// attributes.
func Restrict(r *rel.Relation, x string, theta rel.Theta, y string) (*rel.Relation, error) {
	xi, err := r.Col(x)
	if err != nil {
		return nil, err
	}
	yi, err := r.Col(y)
	if err != nil {
		return nil, err
	}
	out := rel.NewRelation("", r.Schema)
	for _, t := range r.Tuples {
		if theta.Eval(t[xi], t[yi]) {
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out, nil
}

// Project returns r restricted to the named attributes, with duplicate
// tuples eliminated (set semantics).
func Project(r *rel.Relation, attrs []string) (*rel.Relation, error) {
	idx := make([]int, len(attrs))
	outAttrs := make([]rel.Attr, len(attrs))
	for i, a := range attrs {
		ci, err := r.Col(a)
		if err != nil {
			return nil, err
		}
		idx[i] = ci
		outAttrs[i] = r.Schema.Attr(ci)
	}
	out := rel.NewRelation("", rel.NewSchema(outAttrs...))
	seen := make(map[string]struct{}, len(r.Tuples))
	for _, t := range r.Tuples {
		proj := make(rel.Tuple, len(idx))
		for i, ci := range idx {
			proj[i] = t[ci]
		}
		k := proj.Key()
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out.Tuples = append(out.Tuples, proj)
	}
	return out, nil
}

// Product returns the Cartesian product of a and b. Attribute names of b that
// collide with names of a are disambiguated with the relation name or a
// positional suffix, mirroring how the polygen processor keeps both columns
// until an explicit Coalesce.
func Product(a, b *rel.Relation) (*rel.Relation, error) {
	attrs := a.Schema.Attrs()
	for i := 0; i < b.Schema.Len(); i++ {
		at := b.Schema.Attr(i)
		name := at.Name
		if containsAttr(attrs, name) {
			name = disambiguate(attrs, b.Name, at.Name)
		}
		attrs = append(attrs, rel.Attr{Name: name, Kind: at.Kind})
	}
	out := rel.NewRelation("", rel.NewSchema(attrs...))
	for _, ta := range a.Tuples {
		for _, tb := range b.Tuples {
			row := make(rel.Tuple, 0, len(ta)+len(tb))
			row = append(row, ta...)
			row = append(row, tb...)
			out.Tuples = append(out.Tuples, row)
		}
	}
	return out, nil
}

func containsAttr(attrs []rel.Attr, name string) bool {
	for _, a := range attrs {
		if a.Name == name {
			return true
		}
	}
	return false
}

func disambiguate(attrs []rel.Attr, relName, attrName string) string {
	cand := attrName
	if relName != "" {
		cand = relName + "." + attrName
	}
	for i := 2; containsAttr(attrs, cand); i++ {
		cand = fmt.Sprintf("%s#%d", attrName, i)
	}
	return cand
}

// Union returns the set union of two union-compatible relations.
func Union(a, b *rel.Relation) (*rel.Relation, error) {
	if a.Degree() != b.Degree() {
		return nil, fmt.Errorf("relalg: union of degree %d with degree %d", a.Degree(), b.Degree())
	}
	out := rel.NewRelation("", a.Schema)
	seen := make(map[string]struct{}, len(a.Tuples)+len(b.Tuples))
	for _, src := range [...]*rel.Relation{a, b} {
		for _, t := range src.Tuples {
			k := t.Key()
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out, nil
}

// Difference returns the tuples of a not present in b.
func Difference(a, b *rel.Relation) (*rel.Relation, error) {
	if a.Degree() != b.Degree() {
		return nil, fmt.Errorf("relalg: difference of degree %d with degree %d", a.Degree(), b.Degree())
	}
	drop := make(map[string]struct{}, len(b.Tuples))
	for _, t := range b.Tuples {
		drop[t.Key()] = struct{}{}
	}
	out := rel.NewRelation("", a.Schema)
	seen := make(map[string]struct{}, len(a.Tuples))
	for _, t := range a.Tuples {
		k := t.Key()
		if _, gone := drop[k]; gone {
			continue
		}
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out.Tuples = append(out.Tuples, t)
	}
	return out, nil
}

// Intersect returns the tuples present in both a and b.
func Intersect(a, b *rel.Relation) (*rel.Relation, error) {
	if a.Degree() != b.Degree() {
		return nil, fmt.Errorf("relalg: intersect of degree %d with degree %d", a.Degree(), b.Degree())
	}
	keep := make(map[string]struct{}, len(b.Tuples))
	for _, t := range b.Tuples {
		keep[t.Key()] = struct{}{}
	}
	out := rel.NewRelation("", a.Schema)
	seen := make(map[string]struct{}, len(a.Tuples))
	for _, t := range a.Tuples {
		k := t.Key()
		if _, in := keep[k]; !in {
			continue
		}
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out.Tuples = append(out.Tuples, t)
	}
	return out, nil
}

// Join returns the equi-join of a and b on a.x = b.y, keeping a single join
// column (named after x), mirroring the polygen Join which coalesces the two
// join columns (paper, Tables 5 and 7). It is implemented as a hash join.
func Join(a *rel.Relation, x string, b *rel.Relation, y string) (*rel.Relation, error) {
	xi, err := a.Col(x)
	if err != nil {
		return nil, err
	}
	yi, err := b.Col(y)
	if err != nil {
		return nil, err
	}
	attrs := a.Schema.Attrs()
	var bKeep []int
	for i := 0; i < b.Schema.Len(); i++ {
		if i == yi {
			continue
		}
		at := b.Schema.Attr(i)
		name := at.Name
		if containsAttr(attrs, name) {
			name = disambiguate(attrs, b.Name, at.Name)
		}
		attrs = append(attrs, rel.Attr{Name: name, Kind: at.Kind})
		bKeep = append(bKeep, i)
	}
	out := rel.NewRelation("", rel.NewSchema(attrs...))

	index := make(map[string][]rel.Tuple, len(b.Tuples))
	for _, tb := range b.Tuples {
		if tb[yi].IsNull() {
			continue
		}
		k := tb[yi].Key()
		index[k] = append(index[k], tb)
	}
	for _, ta := range a.Tuples {
		if ta[xi].IsNull() {
			continue
		}
		for _, tb := range index[ta[xi].Key()] {
			row := make(rel.Tuple, 0, len(ta)+len(bKeep))
			row = append(row, ta...)
			for _, i := range bKeep {
				row = append(row, tb[i])
			}
			out.Tuples = append(out.Tuples, row)
		}
	}
	return out, nil
}
