package relalg

import (
	"testing"

	"repro/internal/rel"
)

func mk(name string, attrs []string, rows ...[]any) *rel.Relation {
	r := rel.NewRelation(name, rel.SchemaOf(attrs...))
	for _, row := range rows {
		t := make(rel.Tuple, len(row))
		for i, v := range row {
			switch x := v.(type) {
			case string:
				t[i] = rel.String(x)
			case int:
				t[i] = rel.Int(int64(x))
			case float64:
				t[i] = rel.Float(x)
			case nil:
				t[i] = rel.Null()
			default:
				panic("unsupported literal")
			}
		}
		if err := r.Append(t); err != nil {
			panic(err)
		}
	}
	return r
}

func rows(r *rel.Relation) []string {
	out := make([]string, 0, len(r.Tuples))
	for _, t := range r.Tuples {
		s := ""
		for i, v := range t {
			if i > 0 {
				s += "|"
			}
			s += v.String()
		}
		out = append(out, s)
	}
	return out
}

func wantRows(t *testing.T, r *rel.Relation, want ...string) {
	t.Helper()
	got := rows(r)
	if len(got) != len(want) {
		t.Fatalf("got %d rows %v, want %d rows %v", len(got), got, len(want), want)
	}
	seen := make(map[string]int)
	for _, g := range got {
		seen[g]++
	}
	for _, w := range want {
		if seen[w] == 0 {
			t.Errorf("missing row %q in %v", w, got)
		}
		seen[w]--
	}
}

func people() *rel.Relation {
	return mk("P", []string{"ID", "NAME", "AGE"},
		[]any{1, "ann", 30},
		[]any{2, "bob", 25},
		[]any{3, "cat", 30},
	)
}

func TestSelect(t *testing.T) {
	r, err := Select(people(), "AGE", rel.ThetaEQ, rel.Int(30))
	if err != nil {
		t.Fatal(err)
	}
	wantRows(t, r, "1|ann|30", "3|cat|30")
	if _, err := Select(people(), "ZZZ", rel.ThetaEQ, rel.Int(0)); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestSelectThetaVariants(t *testing.T) {
	lt, _ := Select(people(), "AGE", rel.ThetaLT, rel.Int(30))
	wantRows(t, lt, "2|bob|25")
	ge, _ := Select(people(), "AGE", rel.ThetaGE, rel.Int(30))
	wantRows(t, ge, "1|ann|30", "3|cat|30")
	ne, _ := Select(people(), "NAME", rel.ThetaNE, rel.String("ann"))
	wantRows(t, ne, "2|bob|25", "3|cat|30")
}

func TestRestrict(t *testing.T) {
	r := mk("R", []string{"A", "B"},
		[]any{1, 1}, []any{1, 2}, []any{3, 3},
	)
	eq, err := Restrict(r, "A", rel.ThetaEQ, "B")
	if err != nil {
		t.Fatal(err)
	}
	wantRows(t, eq, "1|1", "3|3")
	if _, err := Restrict(r, "A", rel.ThetaEQ, "Z"); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestProjectDeduplicates(t *testing.T) {
	r, err := Project(people(), []string{"AGE"})
	if err != nil {
		t.Fatal(err)
	}
	wantRows(t, r, "30", "25")
	if r.Schema.Len() != 1 || r.Schema.Attr(0).Name != "AGE" {
		t.Errorf("schema = %v", r.Schema)
	}
}

func TestProjectReorders(t *testing.T) {
	r, err := Project(people(), []string{"NAME", "ID"})
	if err != nil {
		t.Fatal(err)
	}
	wantRows(t, r, "ann|1", "bob|2", "cat|3")
}

func TestProduct(t *testing.T) {
	a := mk("A", []string{"X"}, []any{1}, []any{2})
	b := mk("B", []string{"Y"}, []any{"p"}, []any{"q"})
	p, err := Product(a, b)
	if err != nil {
		t.Fatal(err)
	}
	wantRows(t, p, "1|p", "1|q", "2|p", "2|q")
}

func TestProductDisambiguatesNames(t *testing.T) {
	a := mk("A", []string{"X"}, []any{1})
	b := mk("B", []string{"X"}, []any{2})
	p, err := Product(a, b)
	if err != nil {
		t.Fatal(err)
	}
	names := p.Schema.Names()
	if names[0] != "X" || names[1] != "B.X" {
		t.Errorf("names = %v", names)
	}
	// Unnamed right relation falls back to positional suffix.
	c := mk("", []string{"X"}, []any{3})
	p2, err := Product(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Schema.Names()[1] != "X#2" {
		t.Errorf("names = %v", p2.Schema.Names())
	}
}

func TestUnion(t *testing.T) {
	a := mk("A", []string{"X"}, []any{1}, []any{2})
	b := mk("B", []string{"X"}, []any{2}, []any{3})
	u, err := Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	wantRows(t, u, "1", "2", "3")
	if _, err := Union(a, people()); err == nil {
		t.Error("degree mismatch accepted")
	}
}

func TestDifference(t *testing.T) {
	a := mk("A", []string{"X"}, []any{1}, []any{2}, []any{2}, []any{3})
	b := mk("B", []string{"X"}, []any{2})
	d, err := Difference(a, b)
	if err != nil {
		t.Fatal(err)
	}
	wantRows(t, d, "1", "3")
	if _, err := Difference(a, people()); err == nil {
		t.Error("degree mismatch accepted")
	}
}

func TestIntersect(t *testing.T) {
	a := mk("A", []string{"X"}, []any{1}, []any{2})
	b := mk("B", []string{"X"}, []any{2}, []any{3})
	i, err := Intersect(a, b)
	if err != nil {
		t.Fatal(err)
	}
	wantRows(t, i, "2")
	if _, err := Intersect(a, people()); err == nil {
		t.Error("degree mismatch accepted")
	}
}

func TestJoin(t *testing.T) {
	emp := mk("E", []string{"NAME", "DEPT"},
		[]any{"ann", "db"}, []any{"bob", "os"}, []any{"cat", "db"},
	)
	dep := mk("D", []string{"DNAME", "HEAD"},
		[]any{"db", "turing"}, []any{"os", "ritchie"},
	)
	j, err := Join(emp, "DEPT", dep, "DNAME")
	if err != nil {
		t.Fatal(err)
	}
	wantRows(t, j, "ann|db|turing", "bob|os|ritchie", "cat|db|turing")
	names := j.Schema.Names()
	if len(names) != 3 || names[2] != "HEAD" {
		t.Errorf("join schema = %v", names)
	}
}

func TestJoinSkipsNulls(t *testing.T) {
	a := mk("A", []string{"K"}, []any{nil}, []any{1})
	b := mk("B", []string{"K2"}, []any{nil}, []any{1})
	j, err := Join(a, "K", b, "K2")
	if err != nil {
		t.Fatal(err)
	}
	wantRows(t, j, "1")
}

func TestJoinManyToMany(t *testing.T) {
	a := mk("A", []string{"K", "V"}, []any{1, "a1"}, []any{1, "a2"})
	b := mk("B", []string{"K2", "W"}, []any{1, "b1"}, []any{1, "b2"})
	j, err := Join(a, "K", b, "K2")
	if err != nil {
		t.Fatal(err)
	}
	wantRows(t, j, "1|a1|b1", "1|a1|b2", "1|a2|b1", "1|a2|b2")
}

// TestJoinEqualsRestrictOfProduct checks §II's definition of Join against
// the primitive composition on the untagged baseline.
func TestJoinEqualsRestrictOfProduct(t *testing.T) {
	a := mk("A", []string{"K", "V"}, []any{1, "x"}, []any{2, "y"}, []any{3, "z"})
	b := mk("B", []string{"K2", "W"}, []any{2, "p"}, []any{3, "q"}, []any{4, "r"})
	viaJoin, err := Join(a, "K", b, "K2")
	if err != nil {
		t.Fatal(err)
	}
	prod, err := Product(a, b)
	if err != nil {
		t.Fatal(err)
	}
	restricted, err := Restrict(prod, "K", rel.ThetaEQ, "K2")
	if err != nil {
		t.Fatal(err)
	}
	viaPrimitives, err := Project(restricted, []string{"K", "V", "W"})
	if err != nil {
		t.Fatal(err)
	}
	wantRows(t, viaJoin, rows(viaPrimitives)...)
}
