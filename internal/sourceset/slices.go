package sourceset

import "sort"

// SliceSet is the straightforward sorted-slice set implementation, kept as
// the comparison point for the representation ablation (bench B-SET). It is
// not used by the polygen engine itself.
type SliceSet []ID

// SliceOf builds a SliceSet from ids.
func SliceOf(ids ...ID) SliceSet {
	out := append(SliceSet(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	// Deduplicate in place.
	w := 0
	for i, id := range out {
		if i > 0 && id == out[w-1] {
			continue
		}
		out[w] = id
		w++
	}
	return out[:w]
}

// Union returns the set union of a and b as a new SliceSet.
func (a SliceSet) Union(b SliceSet) SliceSet {
	out := make(SliceSet, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Contains reports membership via binary search.
func (a SliceSet) Contains(id ID) bool {
	i := sort.Search(len(a), func(i int) bool { return a[i] >= id })
	return i < len(a) && a[i] == id
}

// Equal reports element-wise equality.
func (a SliceSet) Equal(b SliceSet) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
