// Package sourceset implements the sets of local-database identifiers that
// the polygen model attaches to every cell: the originating-source set c(o)
// and the intermediate-source set c(i) (paper, §II).
//
// Database names are interned into small integer IDs by a Registry shared
// across one federation. A Set is an immutable value: the first 64 IDs live
// in a bitmask (the common case — the paper's federation has three databases,
// and even a "hundreds of databases" federation mostly touches a handful per
// query), with an ordered overflow slice for larger registries. Union — the
// only operation the algebra performs in inner loops — is a single OR in the
// fast path. Benchmark B-SET in bench_test.go ablates this representation
// against a plain sorted-slice implementation (see slices.go).
package sourceset

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
)

// ID is an interned database identifier.
type ID uint32

// Registry interns database names. It is safe for concurrent use; LQPs and
// the PQP may resolve names from multiple goroutines.
type Registry struct {
	mu    sync.RWMutex
	byID  []string
	byStr map[string]ID
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byStr: make(map[string]ID)}
}

// Intern returns the ID for name, assigning a fresh one on first use.
func (r *Registry) Intern(name string) ID {
	r.mu.RLock()
	id, ok := r.byStr[name]
	r.mu.RUnlock()
	if ok {
		return id
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.byStr[name]; ok {
		return id
	}
	id = ID(len(r.byID))
	r.byID = append(r.byID, name)
	r.byStr[name] = id
	return id
}

// Lookup returns the ID for name if it has been interned.
func (r *Registry) Lookup(name string) (ID, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	id, ok := r.byStr[name]
	return id, ok
}

// Name returns the name for id. It panics on an unknown id: IDs only come
// from Intern, so an unknown one is a cross-registry mix-up.
func (r *Registry) Name(id ID) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if int(id) >= len(r.byID) {
		panic(fmt.Sprintf("sourceset: id %d not in registry (size %d)", id, len(r.byID)))
	}
	return r.byID[id]
}

// Len returns the number of interned names.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byID)
}

// Set is an immutable set of IDs. The zero Set is empty.
type Set struct {
	bits uint64 // membership for IDs 0..63
	rest []ID   // sorted, deduplicated IDs >= 64; nil in the fast path
}

// Empty returns the empty set.
func Empty() Set { return Set{} }

// Of builds a set from the given IDs.
func Of(ids ...ID) Set {
	var s Set
	for _, id := range ids {
		s = s.With(id)
	}
	return s
}

// With returns s ∪ {id}.
func (s Set) With(id ID) Set {
	if id < 64 {
		return Set{bits: s.bits | 1<<id, rest: s.rest}
	}
	i := sort.Search(len(s.rest), func(i int) bool { return s.rest[i] >= id })
	if i < len(s.rest) && s.rest[i] == id {
		return s
	}
	rest := make([]ID, 0, len(s.rest)+1)
	rest = append(rest, s.rest[:i]...)
	rest = append(rest, id)
	rest = append(rest, s.rest[i:]...)
	return Set{bits: s.bits, rest: rest}
}

// Contains reports whether id is a member.
func (s Set) Contains(id ID) bool {
	if id < 64 {
		return s.bits&(1<<id) != 0
	}
	i := sort.Search(len(s.rest), func(i int) bool { return s.rest[i] >= id })
	return i < len(s.rest) && s.rest[i] == id
}

// IsEmpty reports whether the set has no members.
func (s Set) IsEmpty() bool { return s.bits == 0 && len(s.rest) == 0 }

// Len returns the number of members.
func (s Set) Len() int {
	return bits.OnesCount64(s.bits) + len(s.rest)
}

// Union returns s ∪ t. When neither set has overflow members this is a
// single bitwise OR and allocates nothing.
func (s Set) Union(t Set) Set {
	if len(s.rest) == 0 && len(t.rest) == 0 {
		return Set{bits: s.bits | t.bits}
	}
	// Subset fast paths: Sets are immutable, so the superset itself is the
	// union and can be returned as-is, overflow slice shared. The algebra's
	// tag-accumulation loops (OriginUnion folds, MergeTags chains) hit these
	// constantly — a cell's origin set is usually already contained in the
	// running accumulator — and each hit saves a mergeSorted allocation.
	if t.Subset(s) {
		return s
	}
	if s.Subset(t) {
		return t
	}
	return Set{bits: s.bits | t.bits, rest: mergeSorted(s.rest, t.rest)}
}

// Hash64 returns a 64-bit hash of the membership, for hash-bucketed
// dictionary interning of tag sets (core.ColBatch). Equal sets hash
// identically; unequal sets collide only with ordinary hash probability, so
// callers confirm candidates with Equal.
func (s Set) Hash64() uint64 {
	const prime = 0x9E3779B97F4A7C15
	h := (s.bits ^ 0xCBF29CE484222325) * prime
	for _, id := range s.rest {
		h = (h ^ uint64(id)) * prime
	}
	return h
}

func mergeSorted(a, b []ID) []ID {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]ID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Minus returns s \ t (the members of s not in t). Tag presentation uses it
// to separate "purely intermediate" sources from originating ones. The
// overflow members are filtered in one pass — s.rest is already sorted, so
// the survivors are too.
func (s Set) Minus(t Set) Set {
	out := Set{bits: s.bits &^ t.bits}
	if len(s.rest) == 0 {
		return out
	}
	rest := make([]ID, 0, len(s.rest))
	for _, id := range s.rest {
		if !t.Contains(id) {
			rest = append(rest, id)
		}
	}
	if len(rest) > 0 {
		out.rest = rest
	}
	return out
}

// Equal reports whether s and t have the same members.
func (s Set) Equal(t Set) bool {
	if s.bits != t.bits || len(s.rest) != len(t.rest) {
		return false
	}
	for i := range s.rest {
		if s.rest[i] != t.rest[i] {
			return false
		}
	}
	return true
}

// Subset reports whether every member of s is a member of t.
func (s Set) Subset(t Set) bool {
	if s.bits&^t.bits != 0 {
		return false
	}
	for _, id := range s.rest {
		if !t.Contains(id) {
			return false
		}
	}
	return true
}

// IDs returns the members in ascending order.
func (s Set) IDs() []ID {
	out := make([]ID, 0, s.Len())
	for b, i := s.bits, ID(0); b != 0; b, i = b>>1, i+1 {
		if b&1 != 0 {
			out = append(out, i)
		}
	}
	out = append(out, s.rest...)
	return out
}

// Names resolves the members through reg and returns them in interning
// order (ascending ID), which for the paper's federation (AD, PD, CD interned
// in that order) matches the paper's tag rendering.
func (s Set) Names(reg *Registry) []string {
	ids := s.IDs()
	names := make([]string, len(ids))
	for i, id := range ids {
		names[i] = reg.Name(id)
	}
	return names
}

// Format renders the set as "{AD, CD}" using reg; the empty set renders "{}".
func (s Set) Format(reg *Registry) string {
	return "{" + strings.Join(s.Names(reg), ", ") + "}"
}

// Key returns a compact string usable as a map key.
func (s Set) Key() string {
	if len(s.rest) == 0 {
		return fmt.Sprintf("%x", s.bits)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%x", s.bits)
	for _, id := range s.rest {
		fmt.Fprintf(&b, ",%d", id)
	}
	return b.String()
}
