package sourceset

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegistryIntern(t *testing.T) {
	r := NewRegistry()
	ad := r.Intern("AD")
	pd := r.Intern("PD")
	if ad == pd {
		t.Fatal("distinct names share an ID")
	}
	if r.Intern("AD") != ad {
		t.Error("re-interning changed the ID")
	}
	if r.Name(ad) != "AD" || r.Name(pd) != "PD" {
		t.Error("Name lookup wrong")
	}
	if id, ok := r.Lookup("PD"); !ok || id != pd {
		t.Error("Lookup wrong")
	}
	if _, ok := r.Lookup("CD"); ok {
		t.Error("Lookup found an un-interned name")
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2", r.Len())
	}
}

func TestRegistryNamePanicsOnUnknownID(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Name on unknown ID did not panic")
		}
	}()
	NewRegistry().Name(7)
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	done := make(chan ID)
	for i := 0; i < 16; i++ {
		go func() { done <- r.Intern("same") }()
	}
	first := <-done
	for i := 1; i < 16; i++ {
		if got := <-done; got != first {
			t.Fatal("concurrent interning produced distinct IDs")
		}
	}
}

func TestSetBasics(t *testing.T) {
	s := Of(1, 3, 3, 2)
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
	if !s.Contains(1) || !s.Contains(2) || !s.Contains(3) || s.Contains(0) {
		t.Error("Contains wrong")
	}
	if Empty().Len() != 0 || !Empty().IsEmpty() || s.IsEmpty() {
		t.Error("emptiness wrong")
	}
	ids := s.IDs()
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 2 || ids[2] != 3 {
		t.Errorf("IDs = %v", ids)
	}
}

func TestSetImmutability(t *testing.T) {
	s := Of(1)
	u := s.With(2)
	if s.Contains(2) {
		t.Error("With mutated the receiver")
	}
	if !u.Contains(1) || !u.Contains(2) {
		t.Error("With lost members")
	}
}

func TestSetUnion(t *testing.T) {
	a := Of(1, 2)
	b := Of(2, 3)
	u := a.Union(b)
	if u.Len() != 3 || !u.Contains(1) || !u.Contains(2) || !u.Contains(3) {
		t.Errorf("Union = %v", u.IDs())
	}
	if !a.Union(Empty()).Equal(a) || !Empty().Union(a).Equal(a) {
		t.Error("union with empty is not identity")
	}
}

func TestSetEqualSubset(t *testing.T) {
	a := Of(1, 2)
	if !a.Equal(Of(2, 1)) {
		t.Error("order-insensitive equality failed")
	}
	if a.Equal(Of(1)) || a.Equal(Of(1, 3)) {
		t.Error("unequal sets compare equal")
	}
	if !Of(1).Subset(a) || !a.Subset(a) || a.Subset(Of(1)) {
		t.Error("Subset wrong")
	}
	if !Empty().Subset(a) {
		t.Error("empty not subset")
	}
}

func TestSetOverflowBeyond64(t *testing.T) {
	// IDs >= 64 exercise the overflow slice path.
	s := Of(0, 63, 64, 100, 200)
	if s.Len() != 5 {
		t.Errorf("Len = %d, want 5", s.Len())
	}
	for _, id := range []ID{0, 63, 64, 100, 200} {
		if !s.Contains(id) {
			t.Errorf("missing %d", id)
		}
	}
	if s.Contains(65) || s.Contains(199) {
		t.Error("spurious members")
	}
	u := s.Union(Of(64, 150))
	if u.Len() != 6 || !u.Contains(150) {
		t.Errorf("overflow union = %v", u.IDs())
	}
	ids := u.IDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Errorf("IDs not sorted: %v", ids)
		}
	}
	if !s.With(100).Equal(s) {
		t.Error("re-adding an overflow member changed the set")
	}
}

func TestSetNamesAndFormat(t *testing.T) {
	r := NewRegistry()
	ad := r.Intern("AD")
	pd := r.Intern("PD")
	cd := r.Intern("CD")
	s := Of(cd, ad, pd)
	names := s.Names(r)
	if len(names) != 3 || names[0] != "AD" || names[1] != "PD" || names[2] != "CD" {
		t.Errorf("Names = %v (must follow interning order)", names)
	}
	if got := s.Format(r); got != "{AD, PD, CD}" {
		t.Errorf("Format = %q", got)
	}
	if got := Empty().Format(r); got != "{}" {
		t.Errorf("empty Format = %q", got)
	}
}

func TestSetKey(t *testing.T) {
	if Of(1, 2).Key() != Of(2, 1).Key() {
		t.Error("Key order-sensitive")
	}
	if Of(1).Key() == Of(2).Key() {
		t.Error("distinct sets share a key")
	}
	if Of(1, 64).Key() == Of(1).Key() {
		t.Error("overflow member not in key")
	}
	if Of(64).Key() == Of(65).Key() {
		t.Error("distinct overflow sets share a key")
	}
}

// Property tests over random sets, exercising both the bitset and the
// overflow representations.
func randomSet(r *rand.Rand) Set {
	var s Set
	n := r.Intn(8)
	for i := 0; i < n; i++ {
		s = s.With(ID(r.Intn(96))) // half below 64, half above
	}
	return s
}

func TestSetAlgebraProperties(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		a, b, c := randomSet(r), randomSet(r), randomSet(r)
		if !a.Union(b).Equal(b.Union(a)) {
			t.Fatalf("union not commutative: %v %v", a.IDs(), b.IDs())
		}
		if !a.Union(b).Union(c).Equal(a.Union(b.Union(c))) {
			t.Fatalf("union not associative")
		}
		if !a.Union(a).Equal(a) {
			t.Fatalf("union not idempotent: %v", a.IDs())
		}
		if !a.Subset(a.Union(b)) || !b.Subset(a.Union(b)) {
			t.Fatalf("operands not subsets of union")
		}
		if got := a.Union(b).Len(); got > a.Len()+b.Len() {
			t.Fatalf("union bigger than sum: %d > %d", got, a.Len()+b.Len())
		}
	}
}

// TestSetMatchesSliceSet cross-checks the production Set against the naive
// SliceSet on random unions (the ablation baseline must agree semantically).
func TestSetMatchesSliceSet(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		var a, b Set
		var sa, sb SliceSet
		for _, x := range xs {
			a = a.With(ID(x))
			sa = SliceOf(append(sa, ID(x))...)
		}
		for _, y := range ys {
			b = b.With(ID(y))
			sb = SliceOf(append(sb, ID(y))...)
		}
		u := a.Union(b)
		su := sa.Union(sb)
		if u.Len() != len(su) {
			return false
		}
		for _, id := range su {
			if !u.Contains(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSliceSet(t *testing.T) {
	s := SliceOf(3, 1, 2, 2)
	if len(s) != 3 || s[0] != 1 || s[2] != 3 {
		t.Errorf("SliceOf = %v", s)
	}
	if !s.Contains(2) || s.Contains(9) {
		t.Error("Contains wrong")
	}
	u := SliceOf(1).Union(SliceOf(2))
	if !u.Equal(SliceOf(1, 2)) {
		t.Errorf("Union = %v", u)
	}
	if SliceOf(1).Equal(SliceOf(2)) {
		t.Error("unequal slice sets Equal")
	}
}

func TestSetMinus(t *testing.T) {
	a := Of(1, 2, 3, 70, 80)
	b := Of(2, 80, 99)
	d := a.Minus(b)
	if !d.Equal(Of(1, 3, 70)) {
		t.Errorf("Minus = %v", d.IDs())
	}
	if !a.Minus(Empty()).Equal(a) {
		t.Error("minus empty is not identity")
	}
	if !Empty().Minus(a).IsEmpty() {
		t.Error("empty minus anything should be empty")
	}
	if !a.Minus(a).IsEmpty() {
		t.Error("a minus a should be empty")
	}
}

func TestSetMinusRandom(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for i := 0; i < 300; i++ {
		a, b := randomSet(r), randomSet(r)
		d := a.Minus(b)
		for _, id := range d.IDs() {
			if !a.Contains(id) || b.Contains(id) {
				t.Fatalf("Minus wrong member %d", id)
			}
		}
		if !d.Union(a.Union(b)).Equal(a.Union(b)) {
			t.Fatal("Minus escaped the union")
		}
	}
}

// TestSetMinusOverflow pins the single-pass overflow path: survivors keep
// their sorted order and an empty survivor set leaves rest nil-equivalent.
func TestSetMinusOverflow(t *testing.T) {
	s := Of(1, 64, 70, 200)
	d := s.Minus(Of(70))
	if got, want := fmt.Sprint(d.IDs()), fmt.Sprint([]ID{1, 64, 200}); got != want {
		t.Fatalf("Minus overflow = %s, want %s", got, want)
	}
	if !s.Minus(s).Equal(Empty()) {
		t.Error("s \\ s should be empty")
	}
	if !s.Minus(Empty()).Equal(s) {
		t.Error("s \\ {} should be s")
	}
	all := s.Minus(Of(1, 64, 70, 200))
	if !all.IsEmpty() || all.Len() != 0 {
		t.Error("removing every member should leave the empty set")
	}
}

// TestSetLenOverflow checks Len across the bitmask/overflow boundary (the
// bitmask half is counted with math/bits.OnesCount64).
func TestSetLenOverflow(t *testing.T) {
	if got := Of(0, 63, 64, 1000).Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := Empty().Len(); got != 0 {
		t.Fatalf("empty Len = %d, want 0", got)
	}
}
