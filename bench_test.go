// The benchmark harness of the reproduction (DESIGN.md §3). One benchmark
// regenerates each table and figure of the paper (E-T1..E-T9, E-A1..E-A9,
// E-F1..E-F4); the B-* benchmarks are our performance characterization —
// the 1990 paper reports no timings, so those measure the cost of source
// tagging itself, scaling in sources and overlap, the plan optimizer, the
// source-set representation, and the networked LQP path. EXPERIMENTS.md
// records a snapshot of the output.
//
//	go test -bench=. -benchmem
package repro

import (
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/federation"
	"repro/internal/identity"
	"repro/internal/lqp"
	"repro/internal/mediator"
	"repro/internal/paperdata"
	"repro/internal/pqp"
	"repro/internal/rel"
	"repro/internal/relalg"
	"repro/internal/sourceset"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/tables"
	"repro/internal/translate"
	"repro/internal/wire"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------------
// Paper artifacts: one benchmark per table and figure.

func paperPQP(b *testing.B) (*paperdata.Federation, *pqp.PQP) {
	b.Helper()
	fed := paperdata.New()
	return fed, pqp.New(fed.Schema, fed.Registry, identity.CaseFold{}, fed.LQPs())
}

// BenchmarkTable1POM regenerates Table 1: parsing the §III algebraic
// expression and running the Syntax Analyzer.
func BenchmarkTable1POM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e, err := translate.ParseExpr(tables.PaperExpr)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := translate.Analyze(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2PassOne regenerates Table 2: pass one of the POI.
func BenchmarkTable2PassOne(b *testing.B) {
	fed := paperdata.New()
	pom, err := translate.Analyze(translate.MustParseExpr(tables.PaperExpr))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := translate.PassOne(pom, fed.Schema); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3PassTwo regenerates Table 3: pass two of the POI.
func BenchmarkTable3PassTwo(b *testing.B) {
	fed := paperdata.New()
	pom, _ := translate.Analyze(translate.MustParseExpr(tables.PaperExpr))
	h, err := translate.PassOne(pom, fed.Schema)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := translate.PassTwo(h, fed.Schema); err != nil {
			b.Fatal(err)
		}
	}
}

// paperPlan translates the §III query to its IOM once.
func paperPlan(b *testing.B, fed *paperdata.Federation) *translate.Matrix {
	b.Helper()
	pom, err := translate.Analyze(translate.MustParseExpr(tables.PaperExpr))
	if err != nil {
		b.Fatal(err)
	}
	iom, err := translate.Interpret(pom, fed.Schema)
	if err != nil {
		b.Fatal(err)
	}
	return iom
}

// benchPlanPrefix executes the first n rows of Table 3's plan — each
// BenchmarkTableK below measures the work required to materialize that
// table's register.
func benchPlanPrefix(b *testing.B, rows int) {
	fed, q := paperPQP(b)
	iom := paperPlan(b, fed)
	prefix := &translate.Matrix{Rows: iom.Rows[:rows]}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Execute(prefix); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4SelectAtAD materializes R(1) (Table 4).
func BenchmarkTable4SelectAtAD(b *testing.B) { benchPlanPrefix(b, 1) }

// BenchmarkTable5JoinCareer materializes R(3) (Table 5).
func BenchmarkTable5JoinCareer(b *testing.B) { benchPlanPrefix(b, 3) }

// BenchmarkTable6Merge materializes R(7) (Table 6 / A9).
func BenchmarkTable6Merge(b *testing.B) { benchPlanPrefix(b, 7) }

// BenchmarkTable7JoinOrganizations materializes R(8) (Table 7).
func BenchmarkTable7JoinOrganizations(b *testing.B) { benchPlanPrefix(b, 8) }

// BenchmarkTable8Restrict materializes R(9) (Table 8).
func BenchmarkTable8Restrict(b *testing.B) { benchPlanPrefix(b, 9) }

// BenchmarkTable9FullQuery materializes R(10) (Table 9) — the whole plan.
func BenchmarkTable9FullQuery(b *testing.B) { benchPlanPrefix(b, 10) }

// appendixInputs retrieves and tags A1–A3 once.
func appendixInputs(b *testing.B) (*core.Algebra, *core.Relation, *core.Relation, *core.Relation) {
	b.Helper()
	art, err := tables.Compute()
	if err != nil {
		b.Fatal(err)
	}
	return art.PQP.Algebra(), art.A[1], art.A[2], art.A[3]
}

// BenchmarkTableA1toA3Retrieve regenerates the three tagged base relations.
func BenchmarkTableA1toA3Retrieve(b *testing.B) {
	fed, q := paperPQP(b)
	_ = fed
	plan := &translate.Matrix{Rows: []translate.Row{
		{PR: 1, Op: translate.OpRetrieve, LHR: translate.LocalOperand("BUSINESS"), RHA: translate.NoComparand(), RHR: translate.NoOperand(), EL: "AD"},
		{PR: 2, Op: translate.OpRetrieve, LHR: translate.LocalOperand("CORPORATION"), RHA: translate.NoComparand(), RHR: translate.NoOperand(), EL: "PD"},
		{PR: 3, Op: translate.OpRetrieve, LHR: translate.LocalOperand("FIRM"), RHA: translate.NoComparand(), RHR: translate.NoOperand(), EL: "CD"},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Execute(plan); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableA4OuterJoin regenerates Table A4.
func BenchmarkTableA4OuterJoin(b *testing.B) {
	alg, a1, a2, _ := appendixInputs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := alg.OuterJoin(a1, "BNAME", a2, "CNAME"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableA5PrimaryJoin regenerates Table A5 (ONPJ of A1, A2).
func BenchmarkTableA5PrimaryJoin(b *testing.B) {
	alg, a1, a2, _ := appendixInputs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := alg.OuterNaturalPrimaryJoin(a1, "BNAME", a2, "CNAME", "ONAME"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableA6TotalJoin regenerates Table A6 (ONTJ of A1, A2).
func BenchmarkTableA6TotalJoin(b *testing.B) {
	fed := paperdata.New()
	scheme, _ := fed.Schema.Scheme("PORGANIZATION")
	alg, a1, a2, _ := appendixInputs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := alg.OuterNaturalTotalJoin(a1, a2, scheme); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableA7toA9SecondTotalJoin regenerates A7–A9: the ONTJ of A6
// with A3 (computed stepwise in the harness; here as one total join).
func BenchmarkTableA7toA9SecondTotalJoin(b *testing.B) {
	fed := paperdata.New()
	scheme, _ := fed.Schema.Scheme("PORGANIZATION")
	art, err := tables.Compute()
	if err != nil {
		b.Fatal(err)
	}
	alg := art.PQP.Algebra()
	a6, a3 := art.A[6], art.A[3]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := alg.OuterNaturalTotalJoin(a6, a3, scheme); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1EndToEndInProcess is E-F1 over in-process LQPs: SQL text
// to tagged answer (the full Figure 1 path minus sockets).
func BenchmarkFigure1EndToEndInProcess(b *testing.B) {
	_, q := paperPQP(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := q.QuerySQL(tables.PaperSQL)
		if err != nil {
			b.Fatal(err)
		}
		if res.Relation.Cardinality() != 3 {
			b.Fatal("wrong answer")
		}
	}
}

// BenchmarkFigure1EndToEndTCP is E-F1 with the LQPs behind loopback TCP.
func BenchmarkFigure1EndToEndTCP(b *testing.B) {
	fed := paperdata.New()
	lqps := make(map[string]lqp.LQP, 3)
	for _, db := range fed.Databases() {
		srv := wire.NewServer(db)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		client, err := wire.Dial(addr)
		if err != nil {
			b.Fatal(err)
		}
		defer client.Close()
		lqps[client.Name()] = client
	}
	q := pqp.New(fed.Schema, fed.Registry, identity.CaseFold{}, lqps)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := q.QuerySQL(tables.PaperSQL)
		if err != nil {
			b.Fatal(err)
		}
		if res.Relation.Cardinality() != 3 {
			b.Fatal("wrong answer")
		}
	}
}

// BenchmarkFigure2Pipeline is E-F2: the Syntax Analyzer → POI → Optimizer
// pipeline without execution.
func BenchmarkFigure2Pipeline(b *testing.B) {
	fed := paperdata.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := translate.CompileSQL(tables.PaperSQL, fed.Schema)
		if err != nil {
			b.Fatal(err)
		}
		pom, err := translate.Analyze(e)
		if err != nil {
			b.Fatal(err)
		}
		iom, err := translate.Interpret(pom, fed.Schema)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := translate.Optimize(iom); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3PassOne / BenchmarkFigure4PassTwo are E-F3/E-F4 on the
// multi-source §I query, which exercises the branches the example query
// does not (both-sides-local relocation).
func BenchmarkFigure3PassOne(b *testing.B) {
	fed := paperdata.New()
	pom, err := translate.Analyze(translate.MustParseExpr(`PORGANIZATION [CEO = ANAME] PALUMNUS`))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := translate.PassOne(pom, fed.Schema); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4PassTwo(b *testing.B) {
	fed := paperdata.New()
	pom, _ := translate.Analyze(translate.MustParseExpr(`PORGANIZATION [CEO = ANAME] PALUMNUS`))
	h, err := translate.PassOne(pom, fed.Schema)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := translate.PassTwo(h, fed.Schema); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// B-OV: source tagging overhead against the untagged relational baseline.

func overheadInputs(b *testing.B, n int) (*core.Algebra, []*core.Relation, []*rel.Relation) {
	b.Helper()
	f := workload.New(workload.Config{Databases: 2, Entities: n, Overlap: 1, Categories: 10, Seed: 42})
	return core.NewAlgebra(nil), f.TaggedFragments(), f.PlainFragments()
}

func BenchmarkTagOverheadSelect(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		alg, tagged, plain := overheadInputs(b, n)
		cat := rel.String("cat3")
		b.Run(fmt.Sprintf("plain/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := relalg.Select(plain[0], "CAT", rel.ThetaEQ, cat); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("polygen/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := alg.Select(tagged[0], "CAT", rel.ThetaEQ, cat); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTagOverheadProject(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		alg, tagged, plain := overheadInputs(b, n)
		cols := []string{"KEY", "CAT"}
		b.Run(fmt.Sprintf("plain/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := relalg.Project(plain[0], cols); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("polygen/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := alg.Project(tagged[0], cols); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTagOverheadJoin(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		alg, tagged, plain := overheadInputs(b, n)
		b.Run(fmt.Sprintf("plain/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := relalg.Join(plain[0], "KEY", plain[1], "KEY"); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("polygen/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := alg.Join(tagged[0], "KEY", rel.ThetaEQ, tagged[1], "KEY"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTagOverheadUnion(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		alg, tagged, plain := overheadInputs(b, n)
		b.Run(fmt.Sprintf("plain/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := relalg.Union(plain[0], plain[1]); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("polygen/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := alg.Union(tagged[0], tagged[1]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// B-SRC / B-OVL: Merge scaling.

func BenchmarkMergeSources(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16} {
		f := workload.New(workload.Config{Databases: n, Entities: 2000, Overlap: 0.5, Categories: 10, Seed: 42})
		alg := core.NewAlgebra(nil)
		frags := f.TaggedFragments()
		b.Run(fmt.Sprintf("databases=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := alg.Merge(f.Scheme, frags...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMergeOverlap(b *testing.B) {
	for _, ov := range []float64{0.0, 0.5, 1.0} {
		f := workload.New(workload.Config{Databases: 8, Entities: 2000, Overlap: ov, Categories: 10, Seed: 42})
		alg := core.NewAlgebra(nil)
		frags := f.TaggedFragments()
		b.Run(fmt.Sprintf("overlap=%.2f", ov), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := alg.Merge(f.Scheme, frags...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// B-SET: source-set representation ablation (bitset Set vs sorted SliceSet).

func BenchmarkSourceSetUnionBitset(b *testing.B) {
	a := sourceset.Of(0, 2, 5)
	c := sourceset.Of(1, 2, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = a.Union(c)
	}
}

func BenchmarkSourceSetUnionSlice(b *testing.B) {
	a := sourceset.SliceOf(0, 2, 5)
	c := sourceset.SliceOf(1, 2, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = a.Union(c)
	}
}

func BenchmarkSourceSetUnionBitsetOverflow(b *testing.B) {
	a := sourceset.Of(0, 70, 100)
	c := sourceset.Of(1, 70, 130)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = a.Union(c)
	}
}

// ---------------------------------------------------------------------------
// B-OPT: optimizer ablation on a query with redundant fan-out.

func BenchmarkOptimizerAblation(b *testing.B) {
	fed := paperdata.New()
	lqps := fed.LQPs()
	const redundant = `(PORGANIZATION [INDUSTRY = "Banking"]) UNION (PORGANIZATION [INDUSTRY = "Energy"])`
	for _, optimize := range []bool{false, true} {
		name := "off"
		if optimize {
			name = "on"
		}
		b.Run("optimizer="+name, func(b *testing.B) {
			q := pqp.New(fed.Schema, fed.Registry, identity.CaseFold{}, lqps)
			q.Optimize = optimize
			for i := 0; i < b.N; i++ {
				if _, err := q.QueryAlgebra(redundant); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// newStarPQP builds the B-OPT federation: the star-schema workload behind
// Counting LQPs with an injected per-batch wide-area latency, the shape
// where the cost-based optimizer's pushdown and join-order decisions
// dominate (see workload.NewStar for the knobs).
func newStarPQP(b *testing.B, latency time.Duration) (*pqp.PQP, map[string]*lqp.Counting) {
	b.Helper()
	cfg := workload.DefaultStarConfig()
	if !testing.Short() {
		cfg.Facts = 20000
	}
	star := workload.NewStar(cfg)
	counters := make(map[string]*lqp.Counting, 3)
	lqps := make(map[string]lqp.LQP, 3)
	for name, l := range star.LQPs() {
		c := lqp.NewCounting(l)
		c.Latency = latency
		counters[name] = c
		lqps[name] = c
	}
	q := pqp.New(star.Schema, star.Registry, nil, lqps)
	if err := q.CollectStats(); err != nil {
		b.Fatal(err)
	}
	return q, counters
}

// BenchmarkFederatedPushdown (B-OPT) ablates the cost-based optimizer on a
// chained-selection query over the padded fact relation: unoptimized, the
// pass-one-pushed CAT selection still ships six columns of every matching
// row and the VAL filter runs PQP-side; optimized, the whole
// Select∘Select∘Project pipeline executes inside the fact LQP and only the
// surviving single-column rows pay the injected per-batch wide-area
// latency. cells/query is the simulated bytes-on-wire metric.
func BenchmarkFederatedPushdown(b *testing.B) {
	const query = `((PFACT [CAT = "cat3"]) [VAL >= 5000]) [VAL]`
	for _, optimize := range []bool{false, true} {
		name := "off"
		if optimize {
			name = "on"
		}
		b.Run("optimizer="+name, func(b *testing.B) {
			q, counters := newStarPQP(b, 2*time.Millisecond)
			q.Optimize = optimize
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := q.QueryAlgebra(query); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			cells := int64(0)
			for _, c := range counters {
				cells += c.CellsTransferred()
			}
			b.ReportMetric(float64(cells)/float64(b.N), "cells/query")
		})
	}
}

// BenchmarkFederatedJoinOrder (B-OPT) ablates join ordering on a star join
// whose selective dimension filter is written LAST: as written, the plan
// joins the full fact relation against DIM first and only then against the
// filtered MID. mode=strict keeps the paper's tag-exact order (only
// build-side swaps are admissible there; none fires for this shape);
// mode=relaxed lets the greedy pass attach the filtered dimension first, so
// the second join probes ~40% of the fact rows instead of all of them — at
// the cost of an order-dependent intermediate-tag audit trail (data and
// origin tags are proven unchanged by the property suite).
func BenchmarkFederatedJoinOrder(b *testing.B) {
	const query = `(((PFACT [MK = MK] PMID) [DK = DK] (PDIM [DCAT = "dcat0"])) [VAL, DCAT, GRADE])`
	for _, mode := range []string{"unoptimized", "strict", "relaxed"} {
		b.Run("mode="+mode, func(b *testing.B) {
			q, _ := newStarPQP(b, 0)
			q.Optimize = mode != "unoptimized"
			q.RelaxedJoinReorder = mode == "relaxed"
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := q.QueryAlgebra(query); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Wire protocol round trip.

func BenchmarkWireRetrieve(b *testing.B) {
	fed := paperdata.New()
	srv := wire.NewServer(fed.CD)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	client, err := wire.Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Execute(lqp.Retrieve("FIRM")); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// B-PAR: parallel plan execution over latency-injected LQPs. The Merge's
// Retrieve fan-out overlaps under ExecuteParallel; with ~2ms per local
// operation the parallel plan approaches one round trip where the serial
// plan pays one per retrieve.
func BenchmarkParallelExecution(b *testing.B) {
	const latency = 2 * time.Millisecond
	fed := paperdata.New()
	mk := func() *pqp.PQP {
		lqps := make(map[string]lqp.LQP, 3)
		for name, l := range fed.LQPs() {
			c := lqp.NewCounting(l)
			c.Latency = latency
			lqps[name] = c
		}
		return pqp.New(fed.Schema, fed.Registry, identity.CaseFold{}, lqps)
	}
	e, err := translate.CompileSQL(`SELECT ONAME FROM PORGANIZATION WHERE INDUSTRY = "Banking"`, fed.Schema)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("serial", func(b *testing.B) {
		q := mk()
		for i := 0; i < b.N; i++ {
			if _, err := q.Run(e); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		q := mk()
		for i := 0; i < b.N; i++ {
			if _, err := q.RunParallel(e); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// B-PAR (intra-operator): morsel-driven partitioned hash operators. The
// fixture is the B-KEY input (3 columns, 100 sources, duplicate entities,
// half-overlapping relations) so serial numbers are directly comparable to
// that family. workers=1 is the untouched serial path; workers=N runs the
// same operator radix-partitioned into N partitions on an N-worker pool
// (threshold 1: every input goes parallel). On a single-core host the
// sweep measures partitioning overhead rather than speedup — scaling
// numbers belong to multi-core runs (EXPERIMENTS.md B-PAR).

func BenchmarkParallelHashOps(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		p1, p2 := keyAblationInput(100, n)
		cols := []string{"KEY", "CAT"}
		for _, w := range []int{1, 2, 4} {
			alg := core.NewAlgebra(nil)
			if w > 1 {
				alg.SetParallel(&core.Parallel{Pool: exec.NewPool(w), Threshold: 1})
			}
			type op struct {
				name string
				run  func() error
			}
			ops := []op{
				{"Union", func() error { _, err := alg.Union(p1, p2); return err }},
				{"Join", func() error { _, err := alg.Join(p1, "KEY", rel.ThetaEQ, p2, "KEY"); return err }},
				{"Project", func() error { _, err := alg.Project(p1, cols); return err }},
				{"Difference", func() error { _, err := alg.Difference(p1, p2); return err }},
				{"Intersect", func() error { _, err := alg.Intersect(p1, p2); return err }},
			}
			for _, o := range ops {
				b.Run(fmt.Sprintf("op=%s/n=%d/workers=%d", o.name, n, w), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if err := o.run(); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkParallelStreamJoin (B-PAR): the streaming engine's parallel
// path — partitioned build plus the ParallelCursor probe — against the
// serial streaming join, on the same B-KEY fixture.
func BenchmarkParallelStreamJoin(b *testing.B) {
	const n = 100000
	p1, p2 := keyAblationInput(100, n)
	for _, w := range []int{1, 2, 4} {
		alg := core.NewAlgebra(nil)
		if w > 1 {
			alg.SetParallel(&core.Parallel{Pool: exec.NewPool(w), Threshold: 1})
		}
		b.Run(fmt.Sprintf("n=%d/workers=%d", n, w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cur, err := alg.StreamJoin(core.CursorOf(p1), "KEY", rel.ThetaEQ, core.CursorOf(p2), "KEY")
				if err != nil {
					b.Fatal(err)
				}
				if _, err := core.Drain(cur); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelMediatorLatency (B-PAR): what intra-operator
// parallelism buys a single mediator client — the latency of one heavy
// union query (two ~1/5 selections over a 30k-entity two-database
// federation) through the full session path, at pool sizes 1 (parallel
// path disabled) and 4. Every other B-PAR point measures an operator in
// isolation; this one includes translation, retrieval, tagging and the
// mediator bookkeeping that dilute Amdahl's parallel fraction.
func BenchmarkParallelMediatorLatency(b *testing.B) {
	f := workload.New(workload.Config{Databases: 2, Entities: 30000, Overlap: 0.6, Categories: 5, Seed: 9})
	const query = `(PENTITY [CAT = "cat1"]) UNION (PENTITY [CAT = "cat2"])`
	for _, w := range []int{1, 4} {
		q := pqp.New(f.Schema, f.Registry, nil, f.LQPs())
		if w > 1 {
			q.SetParallel(w, 1024)
		} else {
			q.SetParallel(-1, 0)
		}
		svc := mediator.New(q, mediator.Config{Federation: "ent"})
		if _, err := svc.Query("", query, true); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := svc.Query("", query, true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMergeStrategy ablates the Merge fold shape: the paper's left
// fold vs the balanced pairwise tree, at 16 sources.
func BenchmarkMergeStrategy(b *testing.B) {
	f := workload.New(workload.Config{Databases: 16, Entities: 2000, Overlap: 0.5, Categories: 10, Seed: 42})
	alg := core.NewAlgebra(nil)
	frags := f.TaggedFragments()
	b.Run("fold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := alg.Merge(f.Scheme, frags...); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("balanced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := alg.MergeBalanced(f.Scheme, frags...); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// B-KEY: key-representation ablation — the string-keyed engine the algebra
// shipped with (Tuple.DataKey / Resolver.Canonical, one make per row; kept
// as the Ref* operators in core/reference.go) against the hash-native engine
// (Tuple.DataHash64 buckets confirmed with DataEqual, interned CanonicalID
// join probes, arena-backed rows). Scaling in sources exercises the
// sourceset overflow path (IDs >= 64); scaling in tuples exercises the dedup
// and probe tables. EXPERIMENTS.md records a snapshot.

// keyAblationInput builds a pair of 3-column polygen relations with n tuples
// each over a registry of s sources. Every entity appears twice in each
// relation (so Project and Union exercise tag merging), the two relations
// overlap on half their entities (so Join produces matches), and every cell
// is tagged with one of the s sources round-robin — with s > 64 the tag sets
// spill into the sourceset overflow slice.
func keyAblationInput(s, n int) (*core.Relation, *core.Relation) {
	reg := sourceset.NewRegistry()
	ids := make([]sourceset.ID, s)
	for i := 0; i < s; i++ {
		ids[i] = reg.Intern(fmt.Sprintf("S%d", i))
	}
	mk := func(name string, base int) *core.Relation {
		p := core.NewRelation(name, reg,
			core.Attr{Name: "KEY", Polygen: "KEY"},
			core.Attr{Name: "CAT", Polygen: "CAT"},
			core.Attr{Name: "VAL", Polygen: "VAL"},
		)
		for i := 0; i < n; i++ {
			e := base + i/2 // each entity twice
			origin := sourceset.Of(ids[i%s])
			row := p.NewRow(3)
			row[0] = core.Cell{D: rel.String(fmt.Sprintf("E%07d", e)), O: origin}
			row[1] = core.Cell{D: rel.String(fmt.Sprintf("cat%d", e%97)), O: origin}
			row[2] = core.Cell{D: rel.Int(int64(e)), O: origin}
			if err := p.Append(row); err != nil {
				panic(err)
			}
		}
		return p
	}
	// p2 starts halfway through p1's entity range: half the entities join.
	return mk("P1", 0), mk("P2", n/4)
}

// benchKeyedOps runs the three acceptance operators at one (sources, tuples)
// point for both key representations.
func benchKeyedOps(b *testing.B, s, n int) {
	alg := core.NewAlgebra(nil)
	p1, p2 := keyAblationInput(s, n)
	cols := []string{"KEY", "CAT"}
	type impl struct {
		name    string
		project func(*core.Relation, []string) (*core.Relation, error)
		union   func(_, _ *core.Relation) (*core.Relation, error)
		join    func(*core.Relation, string, rel.Theta, *core.Relation, string) (*core.Relation, error)
	}
	impls := []impl{
		{"string", alg.RefProject, alg.RefUnion, alg.RefJoin},
		{"hash", alg.Project, alg.Union, alg.Join},
	}
	for _, im := range impls {
		b.Run(fmt.Sprintf("op=Project/keys=%s", im.name), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := im.project(p1, cols); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("op=Union/keys=%s", im.name), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := im.union(p1, p2); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("op=Join/keys=%s", im.name), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := im.join(p1, "KEY", rel.ThetaEQ, p2, "KEY"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKeyRepresentationSources scales the source count at 100k tuples:
// 10 sources stay within the 64-ID tag bitmask; 100 and 1000 sources spill
// tag sets into the sourceset overflow slice.
func BenchmarkKeyRepresentationSources(b *testing.B) {
	for _, s := range []int{10, 100, 1000} {
		if s > 100 && testing.Short() {
			continue // CI smoke: skip the widest point; measurement runs cover it
		}
		b.Run(fmt.Sprintf("src=%d/n=100000", s), func(b *testing.B) {
			benchKeyedOps(b, s, 100000)
		})
	}
}

// BenchmarkKeyRepresentationTuples scales the tuple count at 100 sources,
// 1k to 1M. The 1M point is skipped under -short to keep CI smoke runs fast.
func BenchmarkKeyRepresentationTuples(b *testing.B) {
	for _, n := range []int{1000, 100000, 1000000} {
		if n > 100000 && testing.Short() {
			continue
		}
		b.Run(fmt.Sprintf("src=100/n=%d", n), func(b *testing.B) {
			benchKeyedOps(b, 100, n)
		})
	}
}

// ---------------------------------------------------------------------------
// B-STREAM: streaming vs. materializing execution.
//
// The fixture is a deliberately memory-hostile pipeline: retrieve an
// n-tuple fragment from one LQP, select ~1/1000th of it at the PQP, project
// one column. The materializing engine holds the whole tagged retrieve (and
// each intermediate) live; the streaming engine holds batches in flight
// plus the small final result, so its peak heap stays roughly flat as n
// grows. BenchmarkStreamingMemory reports the peak live heap as "peak-B";
// its ns/op includes the instrumentation's forced collections, so timing
// comparisons belong to the other benchmarks. BenchmarkStreamingOverlap
// uses latency-injected LQPs (Counting charges latency per batch, modeling
// a wide-area streaming transfer) to show the streaming engine overlapping
// retrieval with PQP work the way the parallel materializing engine does.

// benchStreamFixture builds a one-database federation of n entities and the
// retrieve→select→project plan over it.
func benchStreamFixture(n int) (*pqp.PQP, *translate.Matrix) {
	f := workload.New(workload.Config{Databases: 1, Entities: n, Overlap: 1, Categories: 1000, Seed: 7})
	q := pqp.New(f.Schema, f.Registry, identity.Exact{}, f.LQPs())
	plan := &translate.Matrix{Rows: []translate.Row{
		{PR: 1, Op: translate.OpRetrieve, LHR: translate.LocalOperand("FRAG"),
			RHA: translate.NoComparand(), RHR: translate.NoOperand(), EL: workload.DBName(0)},
		{PR: 2, Op: translate.OpSelect, LHR: translate.RegOperand(1), LHA: []string{"CAT"},
			Theta: rel.ThetaEQ, HasTheta: true, RHA: translate.ConstComparand(rel.String("cat7")),
			RHR: translate.NoOperand(), EL: "PQP"},
		{PR: 3, Op: translate.OpProject, LHR: translate.RegOperand(2), LHA: []string{"KEY"},
			RHA: translate.NoComparand(), RHR: translate.NoOperand(), EL: "PQP"},
	}}
	return q, plan
}

// liveHeap returns the heap bytes actually retained right now. Two
// collections: objects allocated during a concurrent mark phase are kept
// until the NEXT cycle, so a single GC mid-run would report in-flight
// garbage as live.
func liveHeap() uint64 {
	runtime.GC()
	runtime.GC()
	var s runtime.MemStats
	runtime.ReadMemStats(&s)
	return s.HeapAlloc
}

// measureMaterializedPeak measures the peak live heap (over a post-GC
// baseline) of a materializing run, probing synchronously from the
// engine's Trace hook — it fires after each register materializes, while
// the registers it was built from are still held — and once at the end
// with the result alive. No concurrent sampling: every probe runs on the
// engine's own goroutine at a quiescent point, so the readings are
// deterministic.
func measureMaterializedPeak(q *pqp.PQP, plan *translate.Matrix) (uint64, error) {
	base := liveHeap()
	var peak uint64
	q.Trace = func(string, ...any) {
		if s := liveHeap(); s > peak {
			peak = s
		}
	}
	res, err := q.ExecuteMaterialized(plan)
	q.Trace = nil
	if err != nil {
		return 0, err
	}
	if f := liveHeap(); f > peak {
		peak = f
	}
	runtime.KeepAlive(res)
	if peak < base {
		return 0, nil
	}
	return peak - base, nil
}

// measureStreamingPeak drives the streaming engine's cursor tree by hand,
// probing the live heap from inside the drain loop — at exponentially
// spaced batch counts plus every 512th batch — and once at the end with
// the result alive. Probes run between batches on the consumer goroutine:
// exactly the steady state whose footprint the streaming engine claims to
// bound.
func measureStreamingPeak(q *pqp.PQP, plan *translate.Matrix) (uint64, error) {
	base := liveHeap()
	var peak uint64
	cur, err := q.OpenPlan(plan)
	if err != nil {
		return 0, err
	}
	out := core.NewRelation(cur.Name(), cur.Registry(), cur.Attrs()...)
	for batches := 0; ; batches++ {
		batch, err := cur.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			cur.Close()
			return 0, err
		}
		out.Tuples = append(out.Tuples, batch...)
		if batches&(batches-1) == 0 || batches%512 == 0 {
			if s := liveHeap(); s > peak {
				peak = s
			}
		}
	}
	if err := cur.Close(); err != nil {
		return 0, err
	}
	if f := liveHeap(); f > peak {
		peak = f
	}
	runtime.KeepAlive(out)
	if peak < base {
		return 0, nil
	}
	return peak - base, nil
}

func BenchmarkStreamingMemory(b *testing.B) {
	for _, n := range []int{100000, 300000, 1000000} {
		if testing.Short() && n > 100000 {
			continue
		}
		q, plan := benchStreamFixture(n)
		engines := []struct {
			name string
			run  func() (uint64, error)
		}{
			{"materializing", func() (uint64, error) { return measureMaterializedPeak(q, plan) }},
			{"streaming", func() (uint64, error) { return measureStreamingPeak(q, plan) }},
		}
		for _, eng := range engines {
			b.Run(fmt.Sprintf("n=%d/engine=%s", n, eng.name), func(b *testing.B) {
				var peak uint64
				for i := 0; i < b.N; i++ {
					p, err := eng.run()
					if err != nil {
						b.Fatal(err)
					}
					if p > peak {
						peak = p
					}
				}
				b.ReportMetric(float64(peak), "peak-B")
			})
		}
	}
}

func BenchmarkStreamingOverlap(b *testing.B) {
	const latency = 2 * time.Millisecond
	fed := paperdata.New()
	lqps := make(map[string]lqp.LQP, 3)
	for name, l := range fed.LQPs() {
		c := lqp.NewCounting(l)
		c.Latency = latency
		lqps[name] = c
	}
	q := pqp.New(fed.Schema, fed.Registry, identity.CaseFold{}, lqps)
	e, err := translate.CompileSQL(`SELECT ONAME FROM PORGANIZATION WHERE INDUSTRY = "Banking"`, fed.Schema)
	if err != nil {
		b.Fatal(err)
	}
	res, err := q.Run(e)
	if err != nil {
		b.Fatal(err)
	}
	engines := []struct {
		name string
		run  func() (*core.Relation, error)
	}{
		{"materializing", func() (*core.Relation, error) { return q.ExecuteMaterialized(res.Plan) }},
		{"parallel", func() (*core.Relation, error) { return q.ExecuteParallel(res.Plan) }},
		{"streaming", func() (*core.Relation, error) { return q.Execute(res.Plan) }},
	}
	for _, eng := range engines {
		b.Run("engine="+eng.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// B-SERVE: mediator service throughput and tail latency. Where every other
// benchmark measures one caller's wall time, these measure the serving
// system polygend stands up: N closed-loop wire clients sharing one
// mediator (one PQP, one plan cache, one stats catalog) over TCP, with an
// injected per-batch wide-area latency at the LQPs so that concurrency has
// real waiting to overlap. Reported: qps, p50/p99 latency (see
// workload.Drive), plus plan-cache hits.

// newServeMediator stands up the B-SERVE service: the star federation
// behind latency-injected Counting LQPs, a shared PQP (plan cache on or
// off), the mediator session layer, and a wire server. It returns the bound
// address and the service (for cache statistics).
func newServeMediator(b *testing.B, cfg workload.StarConfig, latency time.Duration, cache bool) (string, *mediator.Service) {
	b.Helper()
	star := workload.NewStar(cfg)
	lqps := make(map[string]lqp.LQP, 3)
	for name, l := range star.LQPs() {
		c := lqp.NewCounting(l)
		c.Latency = latency
		lqps[name] = c
	}
	q := pqp.New(star.Schema, star.Registry, nil, lqps)
	if !cache {
		q.Plans = nil
	}
	if err := q.CollectStats(); err != nil {
		b.Fatal(err)
	}
	svc := mediator.New(q, mediator.Config{Federation: "star"})
	srv := wire.NewMediatorServer(svc)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	return addr, svc
}

// serveClients dials one wire client + session per closed-loop worker.
func serveClients(b *testing.B, addr string, n int) ([]*wire.Client, []string) {
	b.Helper()
	clients := make([]*wire.Client, n)
	sessions := make([]string, n)
	for i := range clients {
		c, err := wire.Dial(addr)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { c.Close() })
		info, err := c.OpenSession()
		if err != nil {
			b.Fatal(err)
		}
		clients[i] = c
		sessions[i] = info.ID
	}
	return clients, sessions
}

// BenchmarkServeThroughput (B-SERVE) measures concurrent throughput scaling:
// the same closed-loop query mix at 1..8 clients. With per-batch wide-area
// latency dominating each query, a correctly concurrent service scales
// near-linearly in clients (the acceptance bar is ≥3x qps at 8 clients vs
// 1); a service serializing on one connection or one engine lock would stay
// flat. ns/op is per-query wall time per client; qps is aggregate.
func BenchmarkServeThroughput(b *testing.B) {
	const latency = time.Millisecond
	queries := workload.StarQueries()
	// The serving PQP's intra-operator worker pool defaults to GOMAXPROCS;
	// the label carries it so runs from different machines compare.
	workers := runtime.GOMAXPROCS(0)
	for _, nclients := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("clients=%d/workers=%d", nclients, workers), func(b *testing.B) {
			addr, _ := newServeMediator(b, workload.DefaultStarConfig(), latency, true)
			clients, sessions := serveClients(b, addr, nclients)
			// Warm the plan cache and the canonical-ID interner so every
			// worker measures steady-state serving.
			for _, qt := range queries {
				if _, err := clients[0].Query(sessions[0], qt, true); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			res := workload.Drive(nclients, b.N, func(w, i int) error {
				_, err := clients[w].Query(sessions[w], queries[(w+i)%len(queries)], true)
				return err
			})
			b.StopTimer()
			if res.Errors > 0 {
				b.Fatalf("%d queries failed", res.Errors)
			}
			b.ReportMetric(res.QPS, "qps")
			b.ReportMetric(float64(res.P50.Microseconds()), "p50-µs")
			b.ReportMetric(float64(res.P95.Microseconds()), "p95-µs")
			b.ReportMetric(float64(res.P99.Microseconds()), "p99-µs")
		})
	}
}

// BenchmarkServePlanCache (B-SERVE) ablates the plan cache on the mediator's
// serving interface, in-process so the measurement isolates what the cache
// elides — parsing aside, the whole translation pipeline and the cost-based
// optimizer (pushdown analysis plus the join-order search over candidate
// layouts) — from wire and transfer costs. A tiny federation keeps
// execution cheap; allocs/op shows the hit path allocating no
// translation or reorder-search work (the property suite additionally
// proves the cached matrices are reused pointer-identical); hits/query
// reports the measured hit rate.
func BenchmarkServePlanCache(b *testing.B) {
	cfg := workload.StarConfig{Facts: 200, Dims: 20, Mids: 5, Categories: 10, Seed: 1}
	queries := []string{
		`(((PFACT [MK = MK] PMID) [DK = DK] (PDIM [DCAT = "dcat0"])) [VAL, DCAT, GRADE])`,
		`((PFACT [CAT = "cat3"]) [VAL >= 5000]) [VAL]`,
	}
	for _, cache := range []bool{false, true} {
		name := "off"
		if cache {
			name = "on"
		}
		b.Run("plancache="+name, func(b *testing.B) {
			_, svc := newServeMediator(b, cfg, 0, cache)
			for _, qt := range queries {
				if _, err := svc.Query("", qt, true); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := svc.Query("", queries[i%len(queries)], true); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if cache {
				st := svc.PQP().Plans.Stats()
				b.ReportMetric(float64(st.Hits)/float64(b.N), "hits/query")
			}
		})
	}
}

// ---------------------------------------------------------------------------
// B-FAULT: fault-tolerant federation (internal/federation over a replicated
// star). Each logical source has three replicas; one misbehaves per
// scenario — killed (every call fails), hung (stalls until the per-call
// deadline), slow (latency spike), cut (dies after its first streamed
// batch) — and "none" is the fault-free control behind the same federation
// layer. The numbers to watch: qps and p99 degrade gracefully instead of
// stalling (a dead replica costs at most its deadline plus failover, never
// a hang), and hedges/retries quantify how often the resilience machinery
// actually fired. EXPERIMENTS.md records a snapshot.

// BenchmarkFaultScenarios (B-FAULT) drives the closed-loop star query mix at
// four workers against each scenario. Every query must still answer
// correctly (the workload property suite holds the answers identical
// cell-for-cell); here only latency and throughput are measured.
func BenchmarkFaultScenarios(b *testing.B) {
	queries := workload.StarQueries()
	for _, scenario := range workload.Scenarios() {
		b.Run("scenario="+string(scenario), func(b *testing.B) {
			cat := stats.NewCatalog()
			cfg := workload.FaultConfig{
				Star:     workload.DefaultStarConfig(),
				Scenario: scenario,
				Seed:     1,
				Latency:  2 * time.Millisecond,
				Hang:     time.Second,
				Federation: federation.Config{
					CallTimeout: 250 * time.Millisecond,
					MaxRetries:  1,
					BackoffBase: time.Millisecond,
					BackoffMax:  4 * time.Millisecond,
					HedgeDelay:  0, // adaptive: hedge at the primary's p95
					Seed:        1,
					Stats:       cat,
				},
			}
			rs := workload.NewReplicatedStar(cfg)
			q := pqp.New(rs.Star.Schema, rs.Star.Registry, nil, rs.LQPs())
			for _, qt := range queries {
				if _, err := q.QueryAlgebra(qt); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			res := workload.Drive(4, b.N, func(w, i int) error {
				_, err := q.QueryAlgebra(queries[(w+i)%len(queries)])
				return err
			})
			b.StopTimer()
			if res.Errors > 0 {
				b.Fatalf("%d queries failed under scenario %s; three replicas should absorb one fault", res.Errors, scenario)
			}
			var hedges, retries int64
			for _, db := range []string{"FD", "DD", "MD"} {
				f := cat.Faults(db)
				hedges += f.Hedges
				retries += f.Retries
			}
			b.ReportMetric(res.QPS, "qps")
			b.ReportMetric(float64(res.P50.Microseconds()), "p50-µs")
			b.ReportMetric(float64(res.P95.Microseconds()), "p95-µs")
			b.ReportMetric(float64(res.P99.Microseconds()), "p99-µs")
			b.ReportMetric(float64(hedges)/float64(res.Ops), "hedges/query")
			b.ReportMetric(float64(retries)/float64(res.Ops), "retries/query")
		})
	}
}

// BenchmarkFaultDeadline (B-FAULT) is the never-stalls demonstration in
// isolation: a single query against a federation whose primary replicas all
// hang far longer than the per-call deadline. Wall time per query must sit
// near the deadline-plus-failover budget, nowhere near the hang.
func BenchmarkFaultDeadline(b *testing.B) {
	const deadline = 50 * time.Millisecond
	cfg := workload.FaultConfig{
		Star:     workload.DefaultStarConfig(),
		Scenario: workload.ScenarioHung,
		Seed:     1,
		Hang:     10 * time.Second,
		Federation: federation.Config{
			CallTimeout:     deadline,
			MaxRetries:      1,
			BackoffBase:     time.Millisecond,
			BackoffMax:      4 * time.Millisecond,
			HedgeDelay:      -1, // isolate the deadline path
			BreakerCooldown: time.Hour,
			Seed:            1,
		},
	}
	rs := workload.NewReplicatedStar(cfg)
	q := pqp.New(rs.Star.Schema, rs.Star.Registry, nil, rs.LQPs())
	const query = `((PFACT [CAT = "cat3"]) [VAL >= 5000]) [VAL]`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.QueryAlgebra(query); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// B-COL: columnar execution. Two families: the column-major hash kernels
// against the row engine on the B-KEY fixture (same input as B-PAR
// workers=1, so numbers line up across the three BENCH files), and the
// binary stream-frame codec against the legacy gob framing over a real TCP
// stream. ColBatch inputs are built outside the timer — the kernels are
// measured, not the row-to-column conversion (which the wire decode path
// never pays: binary frames arrive columnar).

func BenchmarkColumnarHashOps(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		p1, p2 := keyAblationInput(100, n)
		c1, c2 := core.FromRelation(p1), core.FromRelation(p2)
		alg := core.NewAlgebra(nil)
		type op struct {
			name string
			row  func() error
			col  func() error
		}
		ops := []op{
			{"Union",
				func() error { _, err := alg.Union(p1, p2); return err },
				func() error { _, err := core.ColUnion(c1, c2); return err }},
			{"Difference",
				func() error { _, err := alg.Difference(p1, p2); return err },
				func() error { _, err := core.ColDifference(c1, c2); return err }},
			{"Intersect",
				func() error { _, err := alg.Intersect(p1, p2); return err },
				func() error { _, err := core.ColIntersect(c1, c2); return err }},
		}
		for _, o := range ops {
			for _, eng := range []struct {
				name string
				run  func() error
			}{{"row", o.row}, {"col", o.col}} {
				b.Run(fmt.Sprintf("op=%s/n=%d/engine=%s", o.name, n, eng.name), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if err := eng.run(); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkColumnarWireStream (B-COL): one full LQP stream — open, drain,
// close — over loopback TCP under both frame codecs. The binary codec
// decodes O(columns) per frame where gob decodes O(rows×columns); the
// allocs/op gap is the point of the measurement.
func BenchmarkColumnarWireStream(b *testing.B) {
	const n = 100000
	db := catalog.NewDatabase("BD")
	db.MustCreate("BIG", rel.SchemaOf("KEY", "CAT", "VAL"))
	for i := 0; i < n; i++ {
		if err := db.Insert("BIG", rel.Tuple{
			rel.String(fmt.Sprintf("E%07d", i/2)),
			rel.String(fmt.Sprintf("cat%d", i%97)),
			rel.Int(int64(i)),
		}); err != nil {
			b.Fatal(err)
		}
	}
	srv := wire.NewServer(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	for _, codec := range []string{"gob", "bin"} {
		client, err := wire.Dial(addr)
		if err != nil {
			b.Fatal(err)
		}
		client.LegacyFrames = codec == "gob"
		b.Run(fmt.Sprintf("codec=%s/n=%d", codec, n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cur, err := client.Open(lqp.Retrieve("BIG"))
				if err != nil {
					b.Fatal(err)
				}
				r, err := rel.Drain(cur)
				if err != nil {
					b.Fatal(err)
				}
				if len(r.Tuples) != n {
					b.Fatalf("streamed %d tuples, want %d", len(r.Tuples), n)
				}
			}
		})
		client.Close()
	}
}

// ---------------------------------------------------------------------------
// B-SHARD: the sharded scatter-gather federation. The star workload runs
// against one logical federation dealt across N shard slices per source
// (every shard behind a Counting meter, so the simulated bytes-on-wire per
// endpoint are measured alongside latency), and against the single-endpoint
// baseline the scatter must not regress from. The headline curve is
// max-shard-cells/query shrinking toward total/N as N grows — each daemon
// serves (and pays transfer for) only its slice — while qps holds.

// shardBenchFederation wires the star behind the federation layer with
// every source dealt across `shards` slices (shards < 1 = the unsharded
// single-endpoint baseline), each endpoint wrapped in a Counting transfer
// meter. Statistics are collected so placement keys are primed and the
// cost-based passes see per-shard cardinalities.
func shardBenchFederation(b *testing.B, shards int) (*pqp.PQP, []*lqp.Counting) {
	b.Helper()
	star := workload.NewStar(workload.DefaultStarConfig())
	reg := federation.NewRegistry(federation.Config{CallTimeout: 10 * time.Second, HedgeDelay: -1})
	var meters []*lqp.Counting
	if shards < 1 {
		for _, db := range star.Databases() {
			c := lqp.NewCounting(lqp.NewLocal(db))
			meters = append(meters, c)
			reg.Add(db.Name(), c)
		}
	} else {
		for _, db := range star.Databases() {
			groups := make([][]lqp.LQP, shards)
			for i := 0; i < shards; i++ {
				slice, err := federation.Slice(db, i, shards)
				if err != nil {
					b.Fatal(err)
				}
				c := lqp.NewCounting(lqp.NewLocal(slice))
				meters = append(meters, c)
				groups[i] = []lqp.LQP{c}
			}
			src := reg.AddSharded(db.Name(), groups...)
			src.SetShardKeys(federation.NewShardMap(db, shards).Keys)
		}
	}
	q := pqp.New(star.Schema, star.Registry, nil, reg.LQPs())
	if err := q.CollectStats(); err != nil {
		b.Fatal(err)
	}
	return q, meters
}

// reportShardTransfer reads the per-endpoint meters and reports the
// bytes-per-shard story: total simulated cells per query and the hottest
// endpoint's share (the per-daemon cost a deployment actually provisions).
func reportShardTransfer(b *testing.B, meters []*lqp.Counting, ops int64) {
	var total, maxCells int64
	for _, m := range meters {
		c := m.CellsTransferred()
		total += c
		if c > maxCells {
			maxCells = c
		}
	}
	b.ReportMetric(float64(total)/float64(ops), "cells/query")
	b.ReportMetric(float64(maxCells)/float64(ops), "max-shard-cells/query")
}

// BenchmarkShardScatterGather (B-SHARD) drives the closed-loop star query
// mix against the single-endpoint federation and against 1/2/4/8-way
// sharded ones. Scatter-gather must hold qps at N=1 (degenerate sharding is
// nearly free) and shrink max-shard-cells/query toward 1/N as N grows.
func BenchmarkShardScatterGather(b *testing.B) {
	queries := workload.StarQueries()
	modes := []struct {
		name   string
		shards int
	}{
		{"endpoint=single", 0},
		{"shards=1", 1},
		{"shards=2", 2},
		{"shards=4", 4},
		{"shards=8", 8},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			q, meters := shardBenchFederation(b, mode.shards)
			for _, qt := range queries {
				if _, err := q.QueryAlgebra(qt); err != nil {
					b.Fatal(err)
				}
			}
			for _, m := range meters {
				m.Reset()
			}
			b.ResetTimer()
			res := workload.Drive(4, b.N, func(w, i int) error {
				_, err := q.QueryAlgebra(queries[(w+i)%len(queries)])
				return err
			})
			b.StopTimer()
			if res.Errors > 0 {
				b.Fatalf("%d queries failed against a healthy sharded federation", res.Errors)
			}
			b.ReportMetric(res.QPS, "qps")
			b.ReportMetric(float64(res.P50.Microseconds()), "p50-µs")
			b.ReportMetric(float64(res.P95.Microseconds()), "p95-µs")
			reportShardTransfer(b, meters, int64(res.Ops))
		})
	}
}

// BenchmarkShardPrunedRetrieve (B-SHARD) isolates placement-key pruning: a
// key-equality select is answered by exactly one shard no matter N, so
// cells/query stays flat while the untouched shards serve nothing — the
// scatter does not tax point lookups with a fan-out.
func BenchmarkShardPrunedRetrieve(b *testing.B) {
	const query = `(PFACT [FK = "F0001234"]) [FK, CAT, VAL]`
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			q, meters := shardBenchFederation(b, shards)
			if _, err := q.QueryAlgebra(query); err != nil {
				b.Fatal(err)
			}
			for _, m := range meters {
				m.Reset()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := q.QueryAlgebra(query); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportShardTransfer(b, meters, int64(b.N))
		})
	}
}

// ---------------------------------------------------------------------------
// B-STORE (durability): the write-ahead segment log and the memory-budgeted
// spill path. Replay throughput bounds restart time, the append sweep is
// what logging (and each fsync policy) costs per acknowledged write against
// the bare in-memory catalog, and the spill join is what grace-spilling a
// hash build to checksummed temp segments costs against the all-in-memory
// build it must match cell-for-cell.

func storeBenchRow(i int) rel.Tuple {
	return rel.Tuple{
		rel.String(fmt.Sprintf("K%07d", i)),
		rel.Int(int64(i * 13)),
		rel.String(fmt.Sprintf("payload row %d with some width to it", i)),
	}
}

func storeBenchSeed(b *testing.B) *catalog.Database {
	b.Helper()
	db := catalog.NewDatabase("BENCH")
	// No key: keyed relations pay a uniqueness scan per Insert call, which
	// would swamp the log append being measured.
	if _, err := db.Create("R", rel.SchemaOf("K", "V", "NOTE")); err != nil {
		b.Fatal(err)
	}
	return db
}

// BenchmarkStoreReplay (B-STORE): recovering a store whose state lives
// entirely in the log tail — decode, checksum and apply n records. SetBytes
// reports it as replay MB/s.
func BenchmarkStoreReplay(b *testing.B) {
	sizes := []int{1000, 20000}
	if testing.Short() {
		sizes = []int{1000}
	}
	for _, n := range sizes {
		b.Run(fmt.Sprintf("records=%d", n), func(b *testing.B) {
			dir := b.TempDir()
			opts := store.Options{Fsync: store.FsyncInterval, CompactBytes: -1}
			st, err := store.Open(dir, "BENCH", storeBenchSeed(b), opts)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < n; i++ {
				if err := st.Insert("R", storeBenchRow(i)); err != nil {
					b.Fatal(err)
				}
			}
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
			warm, err := store.Open(dir, "BENCH", nil, opts)
			if err != nil {
				b.Fatal(err)
			}
			replay := warm.Stats()
			if err := warm.Close(); err != nil {
				b.Fatal(err)
			}
			if replay.ReplayRecords != int64(n) {
				b.Fatalf("replayed %d records, want %d", replay.ReplayRecords, n)
			}
			b.SetBytes(replay.ReplayBytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, err := store.Open(dir, "BENCH", nil, opts)
				if err != nil {
					b.Fatal(err)
				}
				if err := st.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStoreAppend (B-STORE): one acknowledged single-row insert, per
// durability mode. mode=memory is the bare catalog (the pre-durability
// baseline); wal-interval adds encoding, checksumming and the buffered log
// write; wal-always adds the fsync each acknowledgment waits on — the real
// price of "an acked write survives any crash".
func BenchmarkStoreAppend(b *testing.B) {
	b.Run("mode=memory", func(b *testing.B) {
		db := storeBenchSeed(b)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := db.Insert("R", storeBenchRow(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, mode := range []store.FsyncMode{store.FsyncInterval, store.FsyncAlways} {
		b.Run(fmt.Sprintf("mode=wal-%s", mode), func(b *testing.B) {
			st, err := store.Open(b.TempDir(), "BENCH", storeBenchSeed(b),
				store.Options{Fsync: mode, CompactBytes: -1})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := st.Insert("R", storeBenchRow(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSpillJoin (B-STORE): the B-PAR join fixture under a memory
// budget. engine=mem is the unbudgeted in-memory build; engine=hybrid
// spills the overflow partitions and probes the resident ones in memory;
// engine=spill forces essentially every build partition through a temp
// segment and back. The answers are cell- and tag-identical across all
// three — this sweep prices the disk round-trip.
func BenchmarkSpillJoin(b *testing.B) {
	n := 100000
	if testing.Short() {
		n = 20000
	}
	p1, p2 := keyAblationInput(100, n)
	modes := []struct {
		name   string
		budget int64
	}{
		{"mem", 0},
		// The build side runs ~200B/tuple through the byte estimator, so
		// half that keeps roughly half the partitions resident.
		{"hybrid", int64(n) * 100},
		{"spill", 64 << 10},
	}
	for _, m := range modes {
		alg := core.NewAlgebra(nil)
		var mem *core.Memory
		if m.budget > 0 {
			mem = &core.Memory{Budget: m.budget, TempDir: b.TempDir()}
			alg.SetMemory(mem)
		}
		b.Run(fmt.Sprintf("engine=%s/n=%d", m.name, n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cur, err := alg.StreamJoin(core.CursorOf(p1), "KEY", rel.ThetaEQ, core.CursorOf(p2), "KEY")
				if err != nil {
					b.Fatal(err)
				}
				if _, err := core.Drain(cur); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if mem != nil && mem.Spills.Load() == 0 {
				b.Fatalf("engine=%s never spilled: the budget is mislabeling an in-memory run", m.name)
			}
			if mem != nil {
				b.ReportMetric(float64(mem.SpilledRows.Load())/float64(b.N), "spilled-rows/op")
			}
		})
	}
}
