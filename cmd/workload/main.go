// Command workload runs the scaling characterization experiments of
// DESIGN.md (B-SRC, B-OVL, B-OV) on synthetic federations and prints the
// measurements as text tables. These are our experiments, not the paper's —
// the 1990 paper reports no performance numbers — and EXPERIMENTS.md records
// a snapshot of their output.
//
// Usage:
//
//	workload -experiment sources   # Merge cost vs. number of databases
//	workload -experiment overlap   # Merge cost vs. fragment overlap
//	workload -experiment overhead  # tagged vs. untagged operator cost
//	workload -experiment all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/rel"
	"repro/internal/relalg"
	"repro/internal/workload"
)

func main() {
	exp := flag.String("experiment", "all", "sources | overlap | overhead | all")
	entities := flag.Int("entities", 5000, "entities per federation")
	reps := flag.Int("reps", 5, "measurement repetitions (minimum is reported)")
	flag.Parse()

	switch *exp {
	case "sources":
		sources(*entities, *reps)
	case "overlap":
		overlap(*entities, *reps)
	case "overhead":
		overhead(*entities, *reps)
	case "all":
		sources(*entities, *reps)
		fmt.Println()
		overlap(*entities, *reps)
		fmt.Println()
		overhead(*entities, *reps)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(1)
	}
}

// measure runs fn reps times and returns the minimum wall time.
func measure(reps int, fn func()) time.Duration {
	best := time.Duration(0)
	for i := 0; i < reps; i++ {
		start := time.Now()
		fn()
		d := time.Since(start)
		if i == 0 || d < best {
			best = d
		}
	}
	return best
}

func sources(entities, reps int) {
	fmt.Println("B-SRC: Merge cost vs. number of source databases")
	fmt.Printf("%-10s %-12s %-14s %-14s\n", "databases", "tuples", "merge time", "per entity")
	for _, n := range []int{2, 4, 8, 16, 32} {
		f := workload.New(workload.Config{
			Databases: n, Entities: entities, Overlap: 0.5, Categories: 10, Seed: 42,
		})
		alg := core.NewAlgebra(nil)
		frags := f.TaggedFragments()
		total := 0
		for _, fr := range frags {
			total += fr.Cardinality()
		}
		var merged *core.Relation
		d := measure(reps, func() {
			var err error
			merged, err = alg.Merge(f.Scheme, frags...)
			if err != nil {
				panic(err)
			}
		})
		fmt.Printf("%-10d %-12d %-14v %-14v\n", n, total, d, d/time.Duration(merged.Cardinality()))
	}
}

func overlap(entities, reps int) {
	fmt.Println("B-OVL: Merge cost vs. fragment overlap (8 databases)")
	fmt.Printf("%-10s %-12s %-14s %-12s\n", "overlap", "tuples", "merge time", "merged card")
	for _, ov := range []float64{0.0, 0.25, 0.5, 0.75, 1.0} {
		f := workload.New(workload.Config{
			Databases: 8, Entities: entities, Overlap: ov, Categories: 10, Seed: 42,
		})
		alg := core.NewAlgebra(nil)
		frags := f.TaggedFragments()
		total := 0
		for _, fr := range frags {
			total += fr.Cardinality()
		}
		var merged *core.Relation
		d := measure(reps, func() {
			var err error
			merged, err = alg.Merge(f.Scheme, frags...)
			if err != nil {
				panic(err)
			}
		})
		fmt.Printf("%-10.2f %-12d %-14v %-12d\n", ov, total, d, merged.Cardinality())
	}
}

func overhead(entities, reps int) {
	fmt.Println("B-OV: polygen (tagged) vs. plain relational (untagged) operator cost")
	f := workload.New(workload.Config{
		Databases: 2, Entities: entities, Overlap: 1, Categories: 10, Seed: 42,
	})
	alg := core.NewAlgebra(nil)
	tagged := f.TaggedFragments()
	plain := f.PlainFragments()
	cat := rel.String("cat3")

	fmt.Printf("%-22s %-14s %-14s %-8s\n", "operator", "plain", "polygen", "ratio")
	row := func(name string, plainFn, taggedFn func()) {
		dp := measure(reps, plainFn)
		dt := measure(reps, taggedFn)
		fmt.Printf("%-22s %-14v %-14v %.2fx\n", name, dp, dt, float64(dt)/float64(dp))
	}
	row("select (CAT=cat3)",
		func() {
			if _, err := relalg.Select(plain[0], "CAT", rel.ThetaEQ, cat); err != nil {
				panic(err)
			}
		},
		func() {
			if _, err := alg.Select(tagged[0], "CAT", rel.ThetaEQ, cat); err != nil {
				panic(err)
			}
		})
	row("project (KEY, CAT)",
		func() {
			if _, err := relalg.Project(plain[0], []string{"KEY", "CAT"}); err != nil {
				panic(err)
			}
		},
		func() {
			if _, err := alg.Project(tagged[0], []string{"KEY", "CAT"}); err != nil {
				panic(err)
			}
		})
	row("join (on KEY)",
		func() {
			if _, err := relalg.Join(plain[0], "KEY", plain[1], "KEY"); err != nil {
				panic(err)
			}
		},
		func() {
			if _, err := alg.Join(tagged[0], "KEY", rel.ThetaEQ, tagged[1], "KEY"); err != nil {
				panic(err)
			}
		})
	row("union",
		func() {
			if _, err := relalg.Union(plain[0], plain[0]); err != nil {
				panic(err)
			}
		},
		func() {
			if _, err := alg.Union(tagged[0], tagged[0]); err != nil {
				panic(err)
			}
		})
}
