// Command storeload is the crash-recovery smoke driver for durable lqpd
// nodes: it proves that `kill -9` under driven write load never loses an
// acknowledged write and never invents, reorders or corrupts a row.
//
// The drill, end to end:
//
//  1. Seed a one-relation database from a generated CSV and start a real
//     lqpd subprocess on it with -data-dir (the system under test), plus an
//     in-process fault-free twin of the same seed.
//  2. Drive sequential wire inserts at both; every insert the daemon
//     acknowledges is also applied to the twin. At a seeded point mid-load,
//     SIGKILL the daemon — no drain, no flush. The first insert that errors
//     after the kill is "ambiguous": it may or may not have reached the log
//     before the process died.
//  3. Restart lqpd from the same -data-dir (recovery ignores the seed
//     flags) and diff the recovered relation cell-for-cell against the
//     twin: every acknowledged row must be present and identical, and the
//     only extra row tolerated is the ambiguous in-flight one.
//
// Usage:
//
//	go build -o /tmp/lqpd ./cmd/lqpd
//	go run ./cmd/storeload -lqpd /tmp/lqpd -rows 400 -seed 7
//
// Exit status 0 means the recovered database held exactly a prefix of
// acknowledged writes; anything else is a durability bug. -fsync and
// -compact-bytes pass through to the daemon so both sync policies and
// mid-load snapshot rotation get crashed against.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"time"

	"repro/internal/catalog"
	"repro/internal/lqp"
	"repro/internal/rel"
	"repro/internal/wire"
)

const relation = "LOAD"

func main() {
	lqpdBin := flag.String("lqpd", "", "path to the lqpd binary under test (required)")
	rows := flag.Int("rows", 400, "inserts to drive; the kill lands in the middle half of them")
	seed := flag.Int64("seed", 1, "seed for the kill point and row payloads (same seed = same drill)")
	fsync := flag.String("fsync", "always", "fsync policy passed to the daemon (always or interval)")
	compactBytes := flag.Int64("compact-bytes", 4096, "daemon log-rotation threshold; small values crash against live compactions too")
	workDir := flag.String("dir", "", "working directory (default: a fresh temp dir, removed on success)")
	flag.Parse()

	if *lqpdBin == "" {
		fatal("-lqpd is required (build one with: go build -o /tmp/lqpd ./cmd/lqpd)")
	}
	dir := *workDir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "storeload-*")
		if err != nil {
			fatal("%v", err)
		}
	}
	dataDir := filepath.Join(dir, "data")
	seedCSV := filepath.Join(dir, "seed.csv")
	if err := os.WriteFile(seedCSV, []byte(seedCSVText()), 0o644); err != nil {
		fatal("%v", err)
	}

	// The fault-free twin: same seed, never crashed, fed every
	// acknowledged insert.
	twin := catalog.NewDatabase("CRASH")
	if err := twin.LoadCSV(relation, strings.NewReader(seedCSVText()), "K"); err != nil {
		fatal("seeding twin: %v", err)
	}

	rng := rand.New(rand.NewSource(*seed))
	killAfter := *rows/4 + rng.Intn(*rows/2) // in the middle half of the load
	fmt.Printf("storeload: seed=%d rows=%d kill after insert %d (fsync=%s)\n", *seed, *rows, killAfter, *fsync)

	// Phase 1: daemon up, drive inserts, SIGKILL mid-load.
	daemon, addr := startLQPD(*lqpdBin, dataDir, seedCSV, *fsync, *compactBytes)
	client, err := wire.Dial(addr)
	if err != nil {
		fatal("dialing %s: %v", addr, err)
	}
	acked := 0
	var ackedKeys []string         // driven keys in acknowledgment order
	ambiguous := map[string]bool{} // keys whose insert errored mid-flight
	for i := 0; i < *rows; i++ {
		tup := loadRow(i, rng)
		if err := client.Insert(relation, []rel.Tuple{tup}); err != nil {
			// The daemon is (being) killed: this write and all later
			// ones are unacknowledged. Only this in-flight one may
			// still have reached the log.
			ambiguous[tup[0].Str()] = true
			fmt.Printf("storeload: insert %d unacknowledged after kill (%v)\n", i, err)
			break
		}
		acked++
		ackedKeys = append(ackedKeys, tup[0].Str())
		if err := twin.Insert(relation, tup); err != nil {
			fatal("twin insert: %v", err)
		}
		if i == killAfter {
			if err := daemon.Process.Signal(syscall.SIGKILL); err != nil {
				fatal("kill: %v", err)
			}
		}
	}
	client.Close()
	_ = daemon.Wait()
	if acked < killAfter {
		fatal("daemon died before the kill point: %d acked, wanted at least %d", acked, killAfter)
	}
	fmt.Printf("storeload: %d inserts acknowledged, daemon killed\n", acked)

	// Phase 2: recover from the same data dir and diff against the twin.
	daemon2, addr2 := startLQPD(*lqpdBin, dataDir, seedCSV, *fsync, *compactBytes)
	defer func() {
		_ = daemon2.Process.Signal(syscall.SIGTERM)
		_ = daemon2.Wait()
	}()
	client2, err := wire.Dial(addr2)
	if err != nil {
		fatal("dialing recovered daemon: %v", err)
	}
	defer client2.Close()
	got, err := client2.Execute(lqp.Retrieve(relation))
	if err != nil {
		fatal("retrieving recovered %s: %v", relation, err)
	}
	want, err := twin.Snapshot(relation)
	if err != nil {
		fatal("%v", err)
	}

	if msg := diff(got.Tuples, want.Tuples, ackedKeys, ambiguous, *fsync == "always"); msg != "" {
		fatal("recovery diff FAILED: %s", msg)
	}
	fmt.Printf("storeload: OK — recovered %d rows, cell-for-cell identical to the fault-free twin (+%d ambiguous in-flight allowed)\n",
		len(got.Tuples), len(ambiguous))
	if *workDir == "" {
		os.RemoveAll(dir)
	}
}

// seedCSVText is the pre-crash contents of the relation: proof that
// recovery preserves snapshot rows, not just logged ones.
func seedCSVText() string {
	var b strings.Builder
	b.WriteString("K,V,NOTE\n")
	for i := 0; i < 10; i++ {
		fmt.Fprintf(&b, "S%04d,%d,seeded\n", i, i*11)
	}
	return b.String()
}

func loadRow(i int, rng *rand.Rand) rel.Tuple {
	return rel.Tuple{
		rel.String(fmt.Sprintf("K%06d", i)),
		rel.Int(int64(rng.Intn(1_000_000))),
		rel.String(fmt.Sprintf("driven payload %x", rng.Uint64())),
	}
}

// startLQPD launches the daemon and parses its bound address from the
// startup banner ("... on 127.0.0.1:PORT").
func startLQPD(bin, dataDir, seedCSV, fsync string, compactBytes int64) (*exec.Cmd, string) {
	cmd := exec.Command(bin,
		"-name", "CRASH", "-csv", relation+"="+seedCSV,
		"-addr", "127.0.0.1:0",
		"-data-dir", dataDir,
		"-fsync", fsync,
		"-compact-bytes", fmt.Sprintf("%d", compactBytes),
	)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		fatal("%v", err)
	}
	if err := cmd.Start(); err != nil {
		fatal("starting lqpd: %v", err)
	}
	bound := regexp.MustCompile(` on (127\.0\.0\.1:\d+)`)
	sc := bufio.NewScanner(out)
	deadline := time.Now().Add(10 * time.Second)
	for sc.Scan() {
		line := sc.Text()
		fmt.Printf("lqpd: %s\n", strings.TrimPrefix(line, "lqpd: "))
		if m := bound.FindStringSubmatch(line); m != nil {
			// Keep draining stdout so the daemon never blocks on a full pipe.
			go func() { _, _ = io.Copy(io.Discard, out) }()
			return cmd, m[1]
		}
		if time.Now().After(deadline) {
			break
		}
	}
	fatal("lqpd never announced a bound address")
	return nil, ""
}

// diff enforces the recovery invariant cell-for-cell: the recovered
// relation must be the seed rows plus exactly a prefix of the acknowledged
// writes — every recovered row byte-identical to the twin's, no surplus
// beyond an ambiguous in-flight insert, no gaps. With fsync=always the
// prefix must be complete (an acked write survives any crash); with
// fsync=interval a tail of acked writes may be lost, but never a middle
// one.
func diff(got, want []rel.Tuple, ackedKeys []string, ambiguous map[string]bool, requireAll bool) string {
	render := func(t rel.Tuple) string {
		parts := make([]string, len(t))
		for i, v := range t {
			parts[i] = v.String()
		}
		return strings.Join(parts, "|")
	}
	gotBy := make(map[string]string, len(got))
	for _, t := range got {
		gotBy[t[0].Str()] = render(t)
	}
	if len(gotBy) != len(got) {
		return fmt.Sprintf("recovered relation has %d rows but %d distinct keys (duplicated or replayed writes)", len(got), len(gotBy))
	}

	// Which acked writes survived? They must form a gapless prefix.
	ackedSet := make(map[string]bool, len(ackedKeys))
	for _, k := range ackedKeys {
		ackedSet[k] = true
	}
	survived := 0
	for survived < len(ackedKeys) {
		if _, ok := gotBy[ackedKeys[survived]]; !ok {
			break
		}
		survived++
	}
	for _, k := range ackedKeys[survived:] {
		if _, ok := gotBy[k]; ok {
			return fmt.Sprintf("recovered writes are not a prefix: row %s present but earlier acked row %s lost", k, ackedKeys[survived])
		}
	}
	if requireAll && survived != len(ackedKeys) {
		return fmt.Sprintf("fsync=always lost acknowledged writes: %d of %d survived (first lost: %s)", survived, len(ackedKeys), ackedKeys[survived])
	}

	// Every surviving row — seeded or acked — must be cell-identical.
	for _, t := range want {
		k := t[0].Str()
		g, ok := gotBy[k]
		if !ok {
			if ackedSet[k] {
				continue // lost tail, already proven contiguous
			}
			return fmt.Sprintf("seeded row %s missing after recovery", render(t))
		}
		if g != render(t) {
			return fmt.Sprintf("row %s corrupted: recovered %q, twin has %q", k, g, render(t))
		}
		delete(gotBy, k)
	}
	for k, g := range gotBy {
		if !ambiguous[k] {
			return fmt.Sprintf("recovered row %q was never acknowledged nor in flight", g)
		}
	}
	return ""
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "storeload: "+format+"\n", args...)
	os.Exit(1)
}
