// Command polygend serves a whole polygen federation as a mediator daemon:
// one shared Polygen Query Processor — plan cache, statistics catalog and
// canonical-ID interner warmed once — behind the wire query protocol, for
// any number of concurrent clients (cmd/polygen -connect, wire.Client, the
// B-SERVE workload driver). It is the paper's Figure 1 stood up as a
// long-running service: LQPs below (in-process paper databases, or remote
// cmd/lqpd daemons via -remote), sessions with audit trails above.
//
// Usage:
//
//	polygend -addr 127.0.0.1:7100                   # paper federation, in-process LQPs
//	polygend -addr :7100 -workload star             # synthetic star federation
//	polygend -addr :7100 -remote 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003
//	polygend -addr :7100 -replicas 'AD=:7001|:7004,PD=:7002|:7005,CD=:7003' \
//	         -degrade partial -health-interval 2s
//	polygend -addr :7100 -shards 'AD=:7001,:7002,:7003'  # AD split across 3x lqpd -shard i/3
//
// Every query runs through the fault-tolerance layer (internal/federation):
// per-replica call deadlines, bounded retries with failover, hedged streaming
// opens and circuit breakers. -replicas gives each logical source several
// lqpd endpoints to fail over between; -degrade picks what happens when a
// source exhausts them all. -shards instead partitions a logical source
// horizontally across several lqpd daemons (each started with -shard i/N)
// and scatter-gathers every retrieval across them — the two compose, since
// each shard address may itself list |-separated replicas.
//
// SIGINT/SIGTERM begin a graceful shutdown: the daemon stops accepting,
// drains in-flight requests up to -drain, then exits. A second signal
// forces immediate teardown.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/cmdutil"
	"repro/internal/federation"
	"repro/internal/identity"
	"repro/internal/lqp"
	"repro/internal/mediator"
	"repro/internal/paperdata"
	"repro/internal/pqp"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/translate"
	"repro/internal/vtab"
	"repro/internal/wire"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "listen address")
	wl := flag.String("workload", "paper", `federation to serve: "paper" (the paper's AD/PD/CD) or "star" (synthetic star schema)`)
	remote := flag.String("remote", "", "comma-separated lqpd addresses to use as the federation's LQPs (paper workload only)")
	replicas := flag.String("replicas", "", `replicated federation spec (paper workload only): comma-separated NAME=addr|addr|... groups of lqpd replicas per logical source, e.g. "AD=:7001|:7004,PD=:7002,CD=:7003"; overrides -remote`)
	shards := flag.String("shards", "", `sharded federation spec (paper workload only): semicolon-separated NAME=addr,addr,... groups, the i-th address serving the slice "lqpd -shard i/N" of that source; an address may carry |-separated replicas of its shard, e.g. "AD=:7001|:7004,:7002,:7003;PD=:7005,:7006". Sources not named keep their in-process LQPs. Conflicts with -remote/-replicas`)
	degrade := flag.String("degrade", "fail", `default degradation policy when a source exhausts its replicas: "fail" (the query fails, naming the source) or "partial" (the leg drops out, named in the answer's diagnostics); sessions may override per-session`)
	healthInterval := flag.Duration("health-interval", 0, "active replica health-probe period (0 disables active probing; passive failure marking always applies)")
	callTimeout := flag.Duration("call-timeout", 10*time.Second, "per-replica call deadline before a call fails over")
	retries := flag.Int("retries", 1, "extra passes over a source's replica set before a call is exhausted")
	hedgeDelay := flag.Duration("hedge-delay", 0, "wait before hedging a streaming open on the next replica (0 = adaptive from observed latency, negative disables hedging)")
	name := flag.String("name", "", "federation name announced to clients (defaults to the workload name)")
	cacheSize := flag.Int("plan-cache", translate.DefaultPlanCacheSize, "plan cache capacity in plans (0 disables the cache)")
	noOptimize := flag.Bool("no-optimize", false, "disable the cost-based query optimizer")
	relaxed := flag.Bool("relaxed-reorder", false, "permit tag-relaxed join reordering (see translate.Options)")
	collect := flag.Bool("collect-stats", true, "probe LQP statistics at startup to seed the optimizer")
	parWorkers := flag.Int("parallel-workers", 0, "intra-operator worker pool size shared by all sessions (0 = GOMAXPROCS, -1 disables the parallel path)")
	parThreshold := flag.Int("parallel-threshold", 0, "minimum input tuples before a hash operator runs partitioned (0 = engine default)")
	memBudget := flag.String("mem-budget", "", `per-query memory budget for blocking hash operators, e.g. "64M" or "1G" (K/M/G suffixes; empty disables): partitions past the budget grace-spill to checksummed temp segments and are processed from disk; mutually exclusive with the parallel path — a budgeted engine builds serially`)
	spillDir := flag.String("spill-dir", "", "directory for -mem-budget spill segments (empty = the OS temp dir)")
	maxSessions := flag.Int("max-sessions", 0, "session table bound (0 = default)")
	sessionIdle := flag.Duration("session-idle", 0, "idle session expiry (0 = default 1h)")
	writeTimeout := flag.Duration("write-timeout", wire.DefaultTimeout, "per-message write deadline (a client that stops reading is dropped)")
	idleTimeout := flag.Duration("idle-timeout", 0, "drop connections idle longer than this (0 = keep idle connections open)")
	legacyFrames := flag.Bool("legacy-frames", false, "refuse the binary stream-frame codec and serve gob row frames only (interop escape hatch)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline for in-flight requests")
	metricsAddr := flag.String("metrics-addr", "", "serve a Prometheus-text-format /metrics endpoint on this HTTP address (empty disables)")
	slowQuery := flag.Duration("slow-query", 0, "log statements slower than this threshold as one JSON line each on stderr (0 disables)")
	flag.Parse()

	policy, err := federation.ParsePolicy(*degrade)
	if err != nil {
		fatal("%v", err)
	}
	// faults receives the fault-tolerance layer's error/retry/hedge
	// observations for the life of the process; it feeds V$FAULT and the
	// /metrics fault counters. It is deliberately not the optimizer's
	// statistics catalog — CollectStats replaces that one wholesale.
	faults := stats.NewCatalog()
	fedCfg := federation.Config{
		CallTimeout:   *callTimeout,
		MaxRetries:    *retries,
		HedgeDelay:    *hedgeDelay,
		ProbeInterval: *healthInterval,
		Stats:         faults,
	}

	// Every LQP map is served through the fault-tolerance layer: per-call
	// deadlines, retries with failover, hedged opens and circuit breakers
	// (internal/federation). With -replicas a logical source has several
	// endpoints to fail over between; otherwise each source is a
	// single-replica group and the layer contributes deadlines and retries.
	// The registry is retained: V$SOURCE_STATS and /metrics snapshot its
	// per-replica health and latency estimators.
	var fedReg *federation.Registry
	resilient := func(lqps map[string]lqp.LQP) map[string]lqp.LQP {
		reg := federation.NewRegistry(fedCfg)
		for name, l := range lqps {
			reg.Add(name, l)
		}
		reg.Start()
		fedReg = reg
		return reg.LQPs()
	}

	// The V$ virtual tables are registered like any other source; their
	// schemes join the polygen schema and their live sources bind after the
	// mediator exists (vtab.Tables serves empty tables until then).
	vt := vtab.New()
	addVtab := func(lqps map[string]lqp.LQP) map[string]lqp.LQP {
		lqps[vtab.SourceName] = vt
		return lqps
	}

	var processor *pqp.PQP
	switch *wl {
	case "paper":
		fed := paperdata.New()
		var lqps map[string]lqp.LQP
		switch {
		case *shards != "":
			if *replicas != "" || *remote != "" {
				fatal("-shards conflicts with -remote/-replicas")
			}
			reg, closeReg := cmdutil.DialShards(*shards, fedCfg, "polygend")
			defer closeReg()
			// Sources the spec does not shard stay in-process behind the
			// same registry, so the federation still answers every scheme.
			served := reg.LQPs()
			for name, l := range fed.LQPs() {
				if _, ok := served[name]; !ok {
					reg.Add(name, l)
				}
			}
			fedReg = reg
			lqps = reg.LQPs()
		case *replicas != "":
			reg, closeReg := cmdutil.DialReplicas(*replicas, fedCfg, "polygend")
			defer closeReg()
			fedReg = reg
			lqps = reg.LQPs()
		case *remote != "":
			dialed, closeLQPs := cmdutil.DialLQPs(*remote, "polygend")
			defer closeLQPs()
			lqps = resilient(dialed)
		default:
			lqps = resilient(fed.LQPs())
		}
		schema, err := vtab.AugmentSchema(fed.Schema)
		if err != nil {
			fatal("%v", err)
		}
		fed.Registry.Intern(vtab.SourceName)
		processor = pqp.New(schema, fed.Registry, identity.CaseFold{}, addVtab(lqps))
	case "star":
		if *remote != "" || *replicas != "" || *shards != "" {
			fatal("-remote/-replicas/-shards are only supported with -workload paper")
		}
		star := workload.NewStar(workload.DefaultStarConfig())
		schema, err := vtab.AugmentSchema(star.Schema)
		if err != nil {
			fatal("%v", err)
		}
		star.Registry.Intern(vtab.SourceName)
		processor = pqp.New(schema, star.Registry, nil, addVtab(resilient(star.LQPs())))
	default:
		fatal("unknown workload %q (want paper or star)", *wl)
	}

	processor.Optimize = !*noOptimize
	processor.RelaxedJoinReorder = *relaxed
	processor.SetParallel(*parWorkers, *parThreshold)
	if *memBudget != "" {
		budget, err := parseBytes(*memBudget)
		if err != nil {
			fatal("bad -mem-budget: %v", err)
		}
		processor.SetMemoryBudget(budget, *spillDir)
	}
	if *cacheSize > 0 {
		processor.Plans = translate.NewPlanCache(*cacheSize)
	} else {
		processor.Plans = nil
	}
	if *collect {
		if err := processor.CollectStats(); err != nil {
			fatal("collecting statistics: %v", err)
		}
	}

	fedName := *name
	if fedName == "" {
		fedName = *wl
	}
	svc := mediator.New(processor, mediator.Config{
		Federation:  fedName,
		MaxSessions: *maxSessions,
		SessionIdle: *sessionIdle,
		Degrade:     policy,
		SlowQuery:   *slowQuery,
	})
	// Everything the V$ tables observe now exists: bind the live sources.
	vt.Bind(vtab.Sources{
		Sessions: svc,
		Plans:    processor.Plans,
		Pool:     processor.Pool(),
		Stats:    func() *stats.Catalog { return processor.Stats },
		Faults:   faults,
		Registry: fedReg,
		Stores:   store.Each,
		Memory:   processor.MemoryConfig(),
	})
	srv := wire.NewMediatorServer(svc)
	srv.WriteTimeout = *writeTimeout
	srv.IdleTimeout = *idleTimeout
	srv.LegacyFrames = *legacyFrames
	bound, err := srv.Listen(*addr)
	if err != nil {
		fatal("%v", err)
	}
	memNote := ""
	if m := processor.MemoryConfig(); m != nil {
		memNote = fmt.Sprintf(", mem budget %dB", m.Budget)
	}
	fmt.Printf("polygend: serving federation %q on %s (plan cache %d, optimizer %v, parallel workers %d, degrade %s%s)\n",
		fedName, bound, *cacheSize, processor.Optimize, processor.ParallelWorkers(), policy, memNote)

	if *metricsAddr != "" {
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fatal("metrics listener: %v", err)
		}
		defer mln.Close()
		mux := http.NewServeMux()
		mux.Handle("/metrics", vt.MetricsHandler())
		go func() { _ = http.Serve(mln, mux) }()
		fmt.Printf("polygend: metrics on http://%s/metrics\n", mln.Addr())
	}

	cmdutil.ServeUntilSignal(srv, *drain, "polygend")
	fmt.Println("polygend: bye")
}

// parseBytes parses a byte count with an optional K/M/G binary suffix
// ("64M" = 64 MiB). Plain digits are bytes.
func parseBytes(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%q is not a byte count (want digits with optional K/M/G suffix)", s)
	}
	if n <= 0 {
		return 0, fmt.Errorf("byte count must be positive, got %q", s)
	}
	return n * mult, nil
}

func fatal(format string, args ...any) { cmdutil.Fatal(format, args...) }
