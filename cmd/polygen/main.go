// Command polygen runs polygen queries — SQL or algebraic — against the
// paper's federation (the Alumni, Placement and Company databases of §IV)
// and prints the composite answer with its data and intermediate source
// tags.
//
// Usage:
//
//	polygen -sql 'SELECT ONAME, CEO FROM PORGANIZATION, PALUMNUS WHERE ...'
//	polygen -alg '( PALUMNUS [DEGREE = "MBA"] ) [ANAME]'
//	polygen                      # interactive: one SQL query per line
//
// Flags:
//
//	-plan   print the POM, half-processed IOM and IOM before the answer
//	-trace  print each executed plan row with its result cardinality
//	-remote addr1,addr2,...      use remote LQPs (see cmd/lqpd) instead of
//	        the in-process federation
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/catalog"
	"repro/internal/identity"
	"repro/internal/lqp"
	"repro/internal/paperdata"
	"repro/internal/pqp"
	"repro/internal/shell"
	"repro/internal/tables"
	"repro/internal/wire"
)

func main() {
	sql := flag.String("sql", "", "polygen SQL query to run")
	alg := flag.String("alg", "", "polygen algebraic expression to run")
	plan := flag.Bool("plan", false, "print translation matrices before the answer")
	trace := flag.Bool("trace", false, "trace plan execution")
	remote := flag.String("remote", "", "comma-separated lqpd addresses to use instead of in-process LQPs")
	flag.Parse()

	fed := paperdata.New()
	lqps := fed.LQPs()
	if *remote != "" {
		lqps = make(map[string]lqp.LQP)
		for _, addr := range strings.Split(*remote, ",") {
			client, err := wire.Dial(strings.TrimSpace(addr))
			if err != nil {
				fatal("dialing %s: %v", addr, err)
			}
			defer client.Close()
			lqps[client.Name()] = client
			fmt.Fprintf(os.Stderr, "connected to LQP %s at %s\n", client.Name(), addr)
		}
	}
	processor := pqp.New(fed.Schema, fed.Registry, identity.CaseFold{}, lqps)
	if *trace {
		processor.Trace = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "  "+format+"\n", args...)
		}
	}

	switch {
	case *sql != "":
		run(processor, *sql, false, *plan)
	case *alg != "":
		run(processor, *alg, true, *plan)
	default:
		repl(processor, fed, *plan, *remote != "")
	}
}

func run(processor *pqp.PQP, query string, algebraic, plan bool) {
	var res *pqp.Result
	var err error
	if algebraic {
		res, err = processor.QueryAlgebra(query)
	} else {
		res, err = processor.QuerySQL(query)
	}
	if err != nil {
		fatal("%v", err)
	}
	if plan {
		fmt.Println("Polygen algebraic expression:")
		fmt.Println("  " + res.Expr.String())
		fmt.Println("\nPolygen Operation Matrix:")
		fmt.Print(indent(res.POM.String()))
		fmt.Println("\nHalf-processed IOM (pass one):")
		fmt.Print(indent(res.Half.String()))
		fmt.Println("\nIntermediate Operation Matrix (pass two):")
		fmt.Print(indent(res.IOM.String()))
		if res.Plan.String() != res.IOM.String() {
			fmt.Println("\nOptimized plan:")
			fmt.Print(indent(res.Plan.String()))
		}
		fmt.Println()
	}
	header, rows := tables.RenderRelation(res.Relation)
	fmt.Println(header)
	fmt.Println(strings.Repeat("-", len(header)))
	for _, r := range rows {
		fmt.Println(r)
	}
	fmt.Printf("(%d tuples)\n", len(rows))
}

func repl(processor *pqp.PQP, fed *paperdata.Federation, plan bool, remote bool) {
	fmt.Println("polygen federation: AD (Alumni), PD (Placement), CD (Company)")
	fmt.Println("schemes:", strings.Join(processor.Schema().SchemeNames(), ", "))
	fmt.Println(`enter SQL or \help:`)
	sh := shell.New(processor)
	sh.ShowPlan = plan
	sh.Resolver = identity.CaseFold{}
	if !remote {
		sh.Databases = map[string]*catalog.Database{
			paperdata.AD: fed.AD, paperdata.PD: fed.PD, paperdata.CD: fed.CD,
		}
	}
	if err := sh.Run(os.Stdin, os.Stdout); err != nil {
		fatal("%v", err)
	}
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "  " + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
