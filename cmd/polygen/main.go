// Command polygen runs polygen queries — SQL or algebraic — against the
// paper's federation (the Alumni, Placement and Company databases of §IV)
// and prints the composite answer with its data and intermediate source
// tags.
//
// Usage:
//
//	polygen -sql 'SELECT ONAME, CEO FROM PORGANIZATION, PALUMNUS WHERE ...'
//	polygen -alg '( PALUMNUS [DEGREE = "MBA"] ) [ANAME]'
//	polygen                      # interactive: one SQL query per line
//
// Flags:
//
//	-plan   print the POM, half-processed IOM and IOM before the answer
//	-trace  print each executed plan row with its result cardinality
//	-remote addr1,addr2,...      use remote LQPs (see cmd/lqpd) instead of
//	        the in-process federation
//	-connect addr                thin-client mode: run everything on a
//	        polygend mediator (see cmd/polygend); the REPL only parses
//	        backslash commands and renders answers
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/catalog"
	"repro/internal/cmdutil"
	"repro/internal/identity"
	"repro/internal/paperdata"
	"repro/internal/pqp"
	"repro/internal/shell"
	"repro/internal/tables"
	"repro/internal/wire"
)

func main() {
	sql := flag.String("sql", "", "polygen SQL query to run")
	alg := flag.String("alg", "", "polygen algebraic expression to run")
	plan := flag.Bool("plan", false, "print translation matrices before the answer")
	trace := flag.Bool("trace", false, "trace plan execution")
	remote := flag.String("remote", "", "comma-separated lqpd addresses to use instead of in-process LQPs")
	connect := flag.String("connect", "", "polygend mediator address: run queries remotely as a thin client")
	flag.Parse()

	if *connect != "" {
		runRemote(*connect, *sql, *alg, *plan)
		return
	}

	fed := paperdata.New()
	lqps := fed.LQPs()
	if *remote != "" {
		var closeLQPs func()
		lqps, closeLQPs = cmdutil.DialLQPs(*remote, "polygen")
		defer closeLQPs()
	}
	processor := pqp.New(fed.Schema, fed.Registry, identity.CaseFold{}, lqps)
	if *trace {
		processor.Trace = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "  "+format+"\n", args...)
		}
	}

	switch {
	case *sql != "":
		run(processor, *sql, false, *plan)
	case *alg != "":
		run(processor, *alg, true, *plan)
	default:
		repl(processor, fed, *plan, *remote != "")
	}
}

// runRemote is the thin-client mode: a wire session against a polygend
// mediator runs the queries; this process only renders answers.
func runRemote(addr, sql, alg string, plan bool) {
	client, err := wire.Dial(addr)
	if err != nil {
		fatal("dialing mediator %s: %v", addr, err)
	}
	defer client.Close()
	backend, err := shell.NewRemoteBackend(client)
	if err != nil {
		fatal("%v", err)
	}
	defer backend.Close()
	sh := shell.NewWithBackend(backend)
	sh.ShowPlan = plan
	switch {
	case sql != "":
		sh.Exec(sql, os.Stdout)
	case alg != "":
		sh.Exec(`\alg `+alg, os.Stdout)
	default:
		fmt.Printf("connected to federation %q at %s (session %s)\n",
			backend.Federation(), addr, backend.Session())
		fmt.Println(`enter SQL or \help:`)
		if err := sh.Run(os.Stdin, os.Stdout); err != nil {
			fatal("%v", err)
		}
	}
}

func run(processor *pqp.PQP, query string, algebraic, plan bool) {
	var res *pqp.Result
	var err error
	if algebraic {
		res, err = processor.QueryAlgebra(query)
	} else {
		res, err = processor.QuerySQL(query)
	}
	if err != nil {
		fatal("%v", err)
	}
	if plan {
		fmt.Println("Polygen algebraic expression:")
		fmt.Println("  " + res.Expr.String())
		fmt.Println("\nPolygen Operation Matrix:")
		fmt.Print(indent(res.POM.String()))
		fmt.Println("\nHalf-processed IOM (pass one):")
		fmt.Print(indent(res.Half.String()))
		fmt.Println("\nIntermediate Operation Matrix (pass two):")
		fmt.Print(indent(res.IOM.String()))
		if res.Plan.String() != res.IOM.String() {
			fmt.Println("\nOptimized plan:")
			fmt.Print(indent(res.Plan.String()))
		}
		fmt.Println()
	}
	header, rows := tables.RenderRelation(res.Relation)
	fmt.Println(header)
	fmt.Println(strings.Repeat("-", len(header)))
	for _, r := range rows {
		fmt.Println(r)
	}
	fmt.Printf("(%d tuples)\n", len(rows))
}

func repl(processor *pqp.PQP, fed *paperdata.Federation, plan bool, remote bool) {
	fmt.Println("polygen federation: AD (Alumni), PD (Placement), CD (Company)")
	fmt.Println("schemes:", strings.Join(processor.Schema().SchemeNames(), ", "))
	fmt.Println(`enter SQL or \help:`)
	sh := shell.New(processor)
	sh.ShowPlan = plan
	sh.Resolver = identity.CaseFold{}
	if !remote {
		sh.Databases = map[string]*catalog.Database{
			paperdata.AD: fed.AD, paperdata.PD: fed.PD, paperdata.CD: fed.CD,
		}
	}
	if err := sh.Run(os.Stdin, os.Stdout); err != nil {
		fatal("%v", err)
	}
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "  " + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}

func fatal(format string, args ...any) { cmdutil.Fatal(format, args...) }
