// Command lqpd serves one of the paper's local databases as a Local Query
// Processor over TCP (Figure 1's LQP boxes, networked). The PQP — cmd/polygen
// with -remote, or any wire.Client — connects to it and issues local
// operations; the database's contents never leave the process except as
// query results.
//
// Usage:
//
//	lqpd -db AD -addr 127.0.0.1:7001
//	lqpd -db PD -addr 127.0.0.1:7002
//	lqpd -db CD -addr 127.0.0.1:7003
//
// A custom database can be served from CSV files or a gob snapshot instead:
//
//	lqpd -name MYDB -addr :7010 -csv 'REL1=/path/a.csv,REL2=/path/b.csv'
//	lqpd -snapshot /path/db.snapshot -addr :7011
//
// With -save the chosen database is also written to a snapshot file on
// startup (handy for turning the embedded paper databases into files).
//
// With -shard i/N the daemon serves only horizontal slice i of the chosen
// database (row placement by canonical-ID hash). N such daemons together
// hold the database exactly once, and a polygend started with -shards
// scatters every retrieval across them and gathers one logical answer:
//
//	lqpd -db AD -addr :7001 -shard 0/2
//	lqpd -db AD -addr :7002 -shard 1/2
//
// The -chaos-* flags turn the daemon into a deliberately unreliable replica
// for fault-tolerance testing: deterministic (seeded) injected errors,
// latency spikes, hangs, mid-stream cursor cuts and transport cuts, so the
// federation layer's retries, hedging and failover can be exercised against
// a live wire:
//
//	lqpd -db AD -addr :7001 -chaos-err-every 5 -chaos-cut-every 3 -chaos-seed 42
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"net"

	"repro/internal/catalog"
	"repro/internal/cmdutil"
	"repro/internal/faultinject"
	"repro/internal/federation"
	"repro/internal/lqp"
	"repro/internal/paperdata"
	"repro/internal/store"
	"repro/internal/wire"
)

func main() {
	dbName := flag.String("db", "", "paper database to serve: AD, PD or CD")
	name := flag.String("name", "", "name for a custom CSV-backed database")
	csvSpec := flag.String("csv", "", "comma-separated REL=path.csv pairs for a custom database")
	snapshot := flag.String("snapshot", "", "serve a database from a gob snapshot file")
	save := flag.String("save", "", "write the served database to a snapshot file before serving")
	addr := flag.String("addr", "127.0.0.1:0", "listen address")
	shardSpec := flag.String("shard", "", `serve one horizontal shard of the chosen database: "i/N" keeps only slice i of N (placement by canonical-ID hash, matching polygend -shards; every row lands on exactly one of the N daemons)`)
	dataDir := flag.String("data-dir", "", "durable mode: persist the database as snapshot + write-ahead segment log in this directory; an empty dir is seeded from -db/-csv/-snapshot (post -shard slicing), a non-empty one is recovered from disk — snapshot plus log tail, truncated at the first torn record — and the seed flags are ignored")
	fsyncMode := flag.String("fsync", "always", `write-ahead log fsync policy: "always" (fsync before every acknowledgment) or "interval" (group fsync on -fsync-interval; a crash may lose the last interval's acknowledged writes)`)
	fsyncInterval := flag.Duration("fsync-interval", 50*time.Millisecond, "group-commit period for -fsync=interval")
	compactBytes := flag.Int64("compact-bytes", 0, "rotate snapshot + log once the log passes this size (0 = engine default 64MiB, negative disables auto-compaction)")
	writeTimeout := flag.Duration("write-timeout", wire.DefaultTimeout, "per-message write deadline (a client that stops reading is dropped)")
	idleTimeout := flag.Duration("idle-timeout", 0, "drop connections idle longer than this (0 = keep idle connections open)")
	legacyFrames := flag.Bool("legacy-frames", false, "refuse the binary stream-frame codec and serve gob row frames only (interop escape hatch)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline for in-flight requests")
	maxProcs := flag.Int("max-procs", 0, "cap the daemon's scheduler parallelism (GOMAXPROCS; 0 = all cores) — on shared hosts, the cores left over are what a co-located polygend's worker pool gets")
	chaosSeed := flag.Int64("chaos-seed", 1, "seed for the deterministic fault-injection cadence")
	chaosErrEvery := flag.Int("chaos-err-every", 0, "inject a transient error every Nth LQP call (0 = off)")
	chaosSlowEvery := flag.Int("chaos-slow-every", 0, "inject -chaos-latency before every Nth LQP call (0 = off)")
	chaosLatency := flag.Duration("chaos-latency", 50*time.Millisecond, "latency spike for -chaos-slow-every")
	chaosHangEvery := flag.Int("chaos-hang-every", 0, "hang every Nth LQP call for -chaos-hang, then fail it (0 = off)")
	chaosHang := flag.Duration("chaos-hang", 5*time.Second, "hang duration for -chaos-hang-every")
	chaosCutEvery := flag.Int("chaos-cut-every", 0, "cut every Nth opened cursor mid-stream (0 = off)")
	chaosCutAfter := flag.Int("chaos-cut-after", 1, "batches a cut cursor delivers before dying")
	chaosPingErrEvery := flag.Int("chaos-ping-err-every", 0, "fail every Nth health-probe ping (0 = off)")
	chaosConnCutReads := flag.Int("chaos-conn-cut-reads", 0, "kill each accepted connection after its Nth read (0 = off)")
	chaosConnCutWrites := flag.Int("chaos-conn-cut-writes", 0, "kill each accepted connection after its Nth write (0 = off)")
	flag.Parse()

	if *maxProcs > 0 {
		runtime.GOMAXPROCS(*maxProcs)
	}

	var db *catalog.Database
	switch {
	case *snapshot != "":
		var err error
		db, err = catalog.OpenFile(*snapshot)
		if err != nil {
			fatal("loading snapshot: %v", err)
		}
	case *dbName != "":
		fed := paperdata.New()
		switch *dbName {
		case paperdata.AD:
			db = fed.AD
		case paperdata.PD:
			db = fed.PD
		case paperdata.CD:
			db = fed.CD
		default:
			fatal("unknown paper database %q (want AD, PD or CD)", *dbName)
		}
	case *name != "" && *csvSpec != "":
		db = catalog.NewDatabase(*name)
		for _, pair := range strings.Split(*csvSpec, ",") {
			eq := strings.IndexByte(pair, '=')
			if eq < 0 {
				fatal("bad -csv entry %q (want REL=path)", pair)
			}
			relName, path := pair[:eq], pair[eq+1:]
			f, err := os.Open(path)
			if err != nil {
				fatal("opening %s: %v", path, err)
			}
			if err := db.LoadCSV(relName, f); err != nil {
				fatal("loading %s: %v", path, err)
			}
			f.Close()
		}
	default:
		fatal("one of -db, -snapshot, or both -name and -csv is required")
	}
	if *save != "" {
		if err := db.SaveFile(*save); err != nil {
			fatal("saving snapshot: %v", err)
		}
		fmt.Printf("lqpd: wrote snapshot of %s to %s\n", db.Name(), *save)
	}

	// Sharding slices after -save: the snapshot stays the whole database,
	// the served catalog is the slice.
	shardNote := ""
	if *shardSpec != "" {
		var idx, n int
		if c, err := fmt.Sscanf(*shardSpec, "%d/%d", &idx, &n); err != nil || c != 2 {
			fatal("bad -shard %q (want i/N, e.g. 0/4)", *shardSpec)
		}
		slice, err := federation.Slice(db, idx, n)
		if err != nil {
			fatal("%v", err)
		}
		db = slice
		shardNote = fmt.Sprintf(" shard %d/%d", idx, n)
	}

	var served wire.LocalLQP = lqp.NewLocal(db)
	var st *store.Store
	durableNote := ""
	if *dataDir != "" {
		mode, err := store.ParseFsyncMode(*fsyncMode)
		if err != nil {
			fatal("%v", err)
		}
		st, err = store.Open(*dataDir, db.Name(), db, store.Options{
			Fsync:         mode,
			FsyncInterval: *fsyncInterval,
			CompactBytes:  *compactBytes,
		})
		if err != nil {
			fatal("opening data dir: %v", err)
		}
		db = st.DB() // recovery may supersede the seed flags
		dur := store.NewLQP(st)
		store.Register(db.Name(), st)
		served = dur
		rst := st.Stats()
		durableNote = fmt.Sprintf(" durable[%s gen=%d replayed=%d truncated=%dB fsync=%s]",
			*dataDir, rst.Generation, rst.ReplayRecords, rst.TruncatedBytes, mode)
	}
	profile := faultinject.Profile{
		Seed:         *chaosSeed,
		ErrEvery:     *chaosErrEvery,
		SlowEvery:    *chaosSlowEvery,
		Latency:      *chaosLatency,
		HangEvery:    *chaosHangEvery,
		Hang:         *chaosHang,
		CutEvery:     *chaosCutEvery,
		CutAfter:     *chaosCutAfter,
		PingErrEvery: *chaosPingErrEvery,
	}
	chaotic := *chaosErrEvery > 0 || *chaosSlowEvery > 0 || *chaosHangEvery > 0 ||
		*chaosCutEvery > 0 || *chaosPingErrEvery > 0
	if chaotic {
		served = faultinject.New(served, profile)
	}
	srv := wire.NewServerFor(served)
	srv.WriteTimeout = *writeTimeout
	srv.IdleTimeout = *idleTimeout
	srv.LegacyFrames = *legacyFrames
	if *chaosConnCutReads > 0 || *chaosConnCutWrites > 0 {
		connProfile := faultinject.ConnProfile{
			CutAfterReads:  *chaosConnCutReads,
			CutAfterWrites: *chaosConnCutWrites,
		}
		srv.ConnHook = func(conn net.Conn) net.Conn { return faultinject.WrapConn(conn, connProfile) }
		chaotic = true
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		fatal("%v", err)
	}
	chaosNote := ""
	if chaotic {
		chaosNote = fmt.Sprintf(" [CHAOS seed=%d]", *chaosSeed)
	}
	fmt.Printf("lqpd: serving %s (%s)%s%s on %s%s\n", db.Name(), strings.Join(db.Relations(), ", "), shardNote, durableNote, bound, chaosNote)

	cmdutil.ServeUntilSignal(srv, *drain, "lqpd")
	if st != nil {
		if err := st.Close(); err != nil {
			fatal("closing store: %v", err)
		}
	}
}

func fatal(format string, args ...any) { cmdutil.Fatal(format, args...) }
