// Command paper-tables regenerates every table of the paper — Tables 1–9 of
// the body and Tables A1–A9 of Appendix A — from the embedded federation and
// diffs each against the expected content. It prints a PASS/FAIL line per
// table (and the full rendered table with -v), exiting non-zero if any table
// diverges. EXPERIMENTS.md is the prose companion to this binary.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/tables"
	"repro/internal/translate"
)

func main() {
	verbose := flag.Bool("v", false, "print every regenerated table in full")
	flag.Parse()

	art, err := tables.Compute()
	if err != nil {
		fmt.Fprintf(os.Stderr, "computing artifacts: %v\n", err)
		os.Exit(1)
	}

	failures := 0
	matrix := func(name, expected string, m *translate.Matrix) {
		d := tables.DiffMatrix(expected, m)
		report(name, d, func() string { return m.String() }, *verbose, &failures)
	}
	relation := func(name, expected string, p *core.Relation) {
		d := tables.Diff(expected, p)
		report(name, d, func() string {
			header, rows := tables.RenderRelation(p)
			return header + "\n" + strings.Join(rows, "\n") + "\n"
		}, *verbose, &failures)
	}

	matrix("Table 1  (Polygen Operation Matrix)", tables.Table1, art.POM)
	matrix("Table 2  (half-processed IOM, pass one)", tables.Table2, art.Half)
	matrix("Table 3  (Intermediate Operation Matrix)", tables.Table3, art.IOM)
	relation("Table 4  (ALUMNUS[DEG=\"MBA\"] at AD)", tables.Table4, art.R[1])
	relation("Table 5  (join with CAREER)", tables.Table5, art.R[3])
	relation("Table 6  (Merge of BUSINESS/CORPORATION/FIRM)", tables.Table6, art.R[7])
	relation("Table 7  (join with merged PORGANIZATION)", tables.Table7, art.R[8])
	relation("Table 8  (restrict CEO = ANAME)", tables.Table8, art.R[9])
	relation("Table 9  (final projection)", tables.Table9, art.R[10])
	relation("Table A1 (retrieved BUSINESS)", tables.TableA1, art.A[1])
	relation("Table A2 (retrieved CORPORATION)", tables.TableA2, art.A[2])
	relation("Table A3 (retrieved FIRM, HQ domain-mapped)", tables.TableA3, art.A[3])
	relation("Table A4 (outer join A1 ⋈ A2)", tables.TableA4, art.A[4])
	relation("Table A5 (outer natural primary join)", tables.TableA5, art.A[5])
	relation("Table A6 (outer natural total join)", tables.TableA6, art.A[6])
	relation("Table A7 (outer join A6 ⋈ A3; see EXPERIMENTS.md)", tables.TableA7, art.A[7])
	relation("Table A8 (outer natural primary join)", tables.TableA8, art.A[8])
	relation("Table A9 (outer natural total join = Table 6)", tables.TableA9, art.A[9])

	fmt.Println()
	if failures > 0 {
		fmt.Printf("%d table(s) diverged from the paper\n", failures)
		os.Exit(1)
	}
	fmt.Println("all 18 tables match the paper")
}

func report(name, diff string, render func() string, verbose bool, failures *int) {
	status := "PASS"
	if diff != "" {
		status = "FAIL"
		*failures++
	}
	fmt.Printf("%s  %s\n", status, name)
	if verbose {
		for _, line := range strings.Split(strings.TrimRight(render(), "\n"), "\n") {
			fmt.Println("      " + line)
		}
	}
	if diff != "" {
		for _, line := range strings.Split(strings.TrimRight(diff, "\n"), "\n") {
			fmt.Println("      " + line)
		}
	}
}
