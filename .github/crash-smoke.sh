#!/usr/bin/env bash
# Crash-recovery smoke: kill -9 a live durable lqpd mid-load and diff the
# recovered database cell-for-cell against a fault-free twin (see
# cmd/storeload). The seed matrix is pinned — each seed picks a different
# kill point relative to record boundaries and live log compactions, and a
# failure replays locally with the same command line. The last drill runs
# fsync=interval, where recovery may drop a tail of acknowledged writes
# but must still yield a gapless prefix.
set -euo pipefail
cd "$(dirname "$0")/.."

bin=$(mktemp -d)/lqpd
trap 'rm -rf "$(dirname "$bin")"' EXIT
go build -o "$bin" ./cmd/lqpd

for seed in 1 2 7 11 23; do
    go run ./cmd/storeload -lqpd "$bin" -rows 300 -seed "$seed"
done
go run ./cmd/storeload -lqpd "$bin" -rows 300 -seed 4 -fsync interval
echo "== crash smoke: all drills recovered exactly a prefix of acknowledged writes"
