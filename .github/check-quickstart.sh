#!/usr/bin/env bash
# Docs check: every `go run ./...` target the README quickstart mentions
# must actually build, and the quickstart example must run to completion.
# Keeps README.md from rotting as packages move.
set -euo pipefail
cd "$(dirname "$0")/.."

# `|| true`: under set -e a no-match grep would abort the substitution
# before the explicit diagnostic below can fire.
targets=$(grep -oE 'go run \./[a-zA-Z0-9_/-]+' README.md | awk '{print $3}' | sort -u || true)
if [ -z "$targets" ]; then
    echo "ERROR: no 'go run ./...' targets found in README.md" >&2
    exit 1
fi
for t in $targets; do
    echo "building README target $t"
    go build -o /dev/null "$t"
done

echo "running ./examples/quickstart"
go run ./examples/quickstart >/dev/null

echo "running ./cmd/paper-tables (regenerates and diffs the paper's tables)"
go run ./cmd/paper-tables >/dev/null

echo "quickstart docs check OK"
