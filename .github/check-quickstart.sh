#!/usr/bin/env bash
# Docs check: every `go run ./...` target the README quickstart mentions
# must actually build, and the quickstart example must run to completion.
# Keeps README.md from rotting as packages move.
set -euo pipefail
cd "$(dirname "$0")/.."

# `|| true`: under set -e a no-match grep would abort the substitution
# before the explicit diagnostic below can fire.
targets=$(grep -oE 'go run \./[a-zA-Z0-9_/-]+' README.md | awk '{print $3}' | sort -u || true)
if [ -z "$targets" ]; then
    echo "ERROR: no 'go run ./...' targets found in README.md" >&2
    exit 1
fi
for t in $targets; do
    echo "building README target $t"
    go build -o /dev/null "$t"
done

echo "running ./examples/quickstart"
go run ./examples/quickstart >/dev/null

echo "running ./cmd/paper-tables (regenerates and diffs the paper's tables)"
go run ./cmd/paper-tables >/dev/null

echo "quickstart docs check OK"

# Observability smoke: a live polygend must serve the V$ virtual tables
# over the wire (including a V$ x V$ join with tags intact) and a valid
# Prometheus text exposition on -metrics-addr.
echo "running observability smoke (V\$ tables + /metrics)"
go build -o /tmp/check-polygend ./cmd/polygend
go build -o /tmp/check-polygen ./cmd/polygen
/tmp/check-polygend -addr 127.0.0.1:7391 -metrics-addr 127.0.0.1:7392 -slow-query 1h >/tmp/check-polygend.log 2>&1 &
POLYGEND_PID=$!
trap 'kill "$POLYGEND_PID" 2>/dev/null || true' EXIT
for i in $(seq 1 50); do
    if grep -q "serving federation" /tmp/check-polygend.log; then break; fi
    sleep 0.1
done

out=$(/tmp/check-polygen -connect 127.0.0.1:7391 -sql 'SELECT SID, QUERIES, POLICY FROM V$SESSION')
echo "$out" | grep -q 'V\$' || { echo "ERROR: V\$SESSION answer carries no V\$ tag: $out" >&2; exit 1; }
/tmp/check-polygen -connect 127.0.0.1:7391 \
    -alg '(V$STMT [SID = SID] V$SESSION) [STMT_ID, STMT_TEXT, POLICY]' >/dev/null
/tmp/check-polygen -connect 127.0.0.1:7391 \
    -alg '(V$POOL [POOL <> ONAME] PORGANIZATION) [POOL, WORKERS, ONAME]' | grep -q '{V\$}' \
    || { echo "ERROR: V\$ x real join lost the V\$ origin tag" >&2; exit 1; }

metrics=$(curl -sf http://127.0.0.1:7392/metrics)
echo "$metrics" | grep -q '^polygen_up 1$' || { echo "ERROR: /metrics lacks polygen_up 1" >&2; exit 1; }
echo "$metrics" | grep -q '^polygen_plan_cache_misses_total ' || { echo "ERROR: /metrics lacks plan-cache counters" >&2; exit 1; }
# Every line must be a well-formed comment or sample (Prometheus text
# format 0.0.4) — the same shape promtool would accept.
echo "$metrics" | awk '
    /^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* / { next }
    /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.eE+-]+$/ { next }
    { print "ERROR: malformed /metrics line: " $0 > "/dev/stderr"; bad = 1 }
    END { exit bad }
'

kill "$POLYGEND_PID" 2>/dev/null || true
wait "$POLYGEND_PID" 2>/dev/null || true
trap - EXIT
echo "observability smoke OK"

# Sharded federation smoke: four lqpd daemons each serve one -shard i/4
# slice of AD, a polygend -shards scatters retrievals across them, and the
# answers must diff clean — byte for byte after a sort — against a
# single-node polygend over the same query. V$SHARD must expose the four
# shard endpoints.
echo "running sharded federation smoke (4x lqpd -shard + polygend -shards)"
go build -o /tmp/check-lqpd ./cmd/lqpd
SHARD_PIDS=()
cleanup_shard() { for p in "${SHARD_PIDS[@]}"; do kill "$p" 2>/dev/null || true; done; }
trap cleanup_shard EXIT
for i in 0 1 2 3; do
    /tmp/check-lqpd -db AD -addr "127.0.0.1:745$((i + 1))" -shard "$i/4" >"/tmp/check-lqpd-shard-$i.log" 2>&1 &
    SHARD_PIDS+=($!)
done
for i in 0 1 2 3; do
    ok=
    for _ in $(seq 1 50); do
        if grep -q "shard $i/4" "/tmp/check-lqpd-shard-$i.log"; then ok=1; break; fi
        sleep 0.1
    done
    [ -n "$ok" ] || { echo "ERROR: lqpd shard $i/4 did not come up" >&2; cat "/tmp/check-lqpd-shard-$i.log" >&2; exit 1; }
done
/tmp/check-polygend -addr 127.0.0.1:7455 \
    -shards 'AD=127.0.0.1:7451,127.0.0.1:7452,127.0.0.1:7453,127.0.0.1:7454' \
    >/tmp/check-polygend-shard.log 2>&1 &
SHARD_PIDS+=($!)
/tmp/check-polygend -addr 127.0.0.1:7456 >/tmp/check-polygend-single.log 2>&1 &
SHARD_PIDS+=($!)
for log in /tmp/check-polygend-shard.log /tmp/check-polygend-single.log; do
    ok=
    for _ in $(seq 1 50); do
        if grep -q "serving federation" "$log"; then ok=1; break; fi
        sleep 0.1
    done
    [ -n "$ok" ] || { echo "ERROR: polygend did not come up" >&2; cat "$log" >&2; exit 1; }
done

shard_queries=(
    'PALUMNUS [ANAME, DEGREE, MAJOR]'
    '(PALUMNUS [DEGREE = "MBA"]) [ANAME, DEGREE]'
    '((PALUMNUS [AID# = AID#] PCAREER) [ONAME = ONAME] PORGANIZATION) [ANAME, ONAME, INDUSTRY]'
)
for q in "${shard_queries[@]}"; do
    /tmp/check-polygen -connect 127.0.0.1:7455 -alg "$q" | sort >/tmp/shard-ans.txt
    /tmp/check-polygen -connect 127.0.0.1:7456 -alg "$q" | sort >/tmp/single-ans.txt
    diff /tmp/single-ans.txt /tmp/shard-ans.txt \
        || { echo "ERROR: sharded answer diverges from single-node on: $q" >&2; exit 1; }
done

vshard=$(/tmp/check-polygen -connect 127.0.0.1:7455 -alg 'V$SHARD [SOURCE, SHARD, SHARDS, REPLICA, HEALTHY, ROWS]')
echo "$vshard" | grep -q '(4 tuples)' \
    || { echo "ERROR: V\$SHARD does not list 4 shard endpoints:" >&2; echo "$vshard" >&2; exit 1; }
echo "$vshard" | grep -c '127.0.0.1:745' | grep -qx 4 \
    || { echo "ERROR: V\$SHARD rows lack the lqpd endpoints:" >&2; echo "$vshard" >&2; exit 1; }

cleanup_shard
trap - EXIT
echo "sharded federation smoke OK"
