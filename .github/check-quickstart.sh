#!/usr/bin/env bash
# Docs check: every `go run ./...` target the README quickstart mentions
# must actually build, and the quickstart example must run to completion.
# Keeps README.md from rotting as packages move.
set -euo pipefail
cd "$(dirname "$0")/.."

# `|| true`: under set -e a no-match grep would abort the substitution
# before the explicit diagnostic below can fire.
targets=$(grep -oE 'go run \./[a-zA-Z0-9_/-]+' README.md | awk '{print $3}' | sort -u || true)
if [ -z "$targets" ]; then
    echo "ERROR: no 'go run ./...' targets found in README.md" >&2
    exit 1
fi
for t in $targets; do
    echo "building README target $t"
    go build -o /dev/null "$t"
done

echo "running ./examples/quickstart"
go run ./examples/quickstart >/dev/null

echo "running ./cmd/paper-tables (regenerates and diffs the paper's tables)"
go run ./cmd/paper-tables >/dev/null

echo "quickstart docs check OK"

# Observability smoke: a live polygend must serve the V$ virtual tables
# over the wire (including a V$ x V$ join with tags intact) and a valid
# Prometheus text exposition on -metrics-addr.
echo "running observability smoke (V\$ tables + /metrics)"
go build -o /tmp/check-polygend ./cmd/polygend
go build -o /tmp/check-polygen ./cmd/polygen
/tmp/check-polygend -addr 127.0.0.1:7391 -metrics-addr 127.0.0.1:7392 -slow-query 1h >/tmp/check-polygend.log 2>&1 &
POLYGEND_PID=$!
trap 'kill "$POLYGEND_PID" 2>/dev/null || true' EXIT
for i in $(seq 1 50); do
    if grep -q "serving federation" /tmp/check-polygend.log; then break; fi
    sleep 0.1
done

out=$(/tmp/check-polygen -connect 127.0.0.1:7391 -sql 'SELECT SID, QUERIES, POLICY FROM V$SESSION')
echo "$out" | grep -q 'V\$' || { echo "ERROR: V\$SESSION answer carries no V\$ tag: $out" >&2; exit 1; }
/tmp/check-polygen -connect 127.0.0.1:7391 \
    -alg '(V$STMT [SID = SID] V$SESSION) [STMT_ID, STMT_TEXT, POLICY]' >/dev/null
/tmp/check-polygen -connect 127.0.0.1:7391 \
    -alg '(V$POOL [POOL <> ONAME] PORGANIZATION) [POOL, WORKERS, ONAME]' | grep -q '{V\$}' \
    || { echo "ERROR: V\$ x real join lost the V\$ origin tag" >&2; exit 1; }

metrics=$(curl -sf http://127.0.0.1:7392/metrics)
echo "$metrics" | grep -q '^polygen_up 1$' || { echo "ERROR: /metrics lacks polygen_up 1" >&2; exit 1; }
echo "$metrics" | grep -q '^polygen_plan_cache_misses_total ' || { echo "ERROR: /metrics lacks plan-cache counters" >&2; exit 1; }
# Every line must be a well-formed comment or sample (Prometheus text
# format 0.0.4) — the same shape promtool would accept.
echo "$metrics" | awk '
    /^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* / { next }
    /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.eE+-]+$/ { next }
    { print "ERROR: malformed /metrics line: " $0 > "/dev/stderr"; bad = 1 }
    END { exit bad }
'

kill "$POLYGEND_PID" 2>/dev/null || true
wait "$POLYGEND_PID" 2>/dev/null || true
trap - EXIT
echo "observability smoke OK"
